// Command mttkrp-bench regenerates the paper's evaluation figures and
// load-tests the serving runtime.
//
// Usage:
//
//	mttkrp-bench -fig all                  # every figure at laptop scale
//	mttkrp-bench -fig 5 -scale 0.05        # Figure 5 at 5% of paper size
//	mttkrp-bench -fig 4a -maxthreads 12    # Figure 4a with a 1..12 sweep
//	mttkrp-bench -fig 7 -paper             # paper-sized (needs a big server)
//	mttkrp-bench -serve                    # serving load generator, conc 1/4/16
//	mttkrp-bench -serve -conc 4 -requests 256 -sdims 60x50x40 -rank 16
//	mttkrp-bench -serve -mix small:8,large:1   # heterogeneous mix: cost-aware vs even-split, per-class p99
//	mttkrp-bench -serve -sparse -density 0.01  # COO workload through the nnz-partitioned sparse path
//	mttkrp-bench -serve -fuse=off              # A/B half: batch-level KRP fusion disabled
//	mttkrp-bench -serve -simd=off              # A/B half: scalar reference kernels
//	mttkrp-bench -serve -numa=on               # A/B half: topology-aware placement on the served side
//	mttkrp-bench -kernels                      # per-kernel GFLOP/s table, scalar vs vectorized
//	mttkrp-bench -serve-http               # HTTP load against an in-process listener
//	mttkrp-bench -serve-http -addr http://host:8080 -requests 256
//	mttkrp-bench -serve-http -mix small:8,large:1  # mixed payloads over the wire
//	mttkrp-bench -serve-http -sparse -density 0.05 # COO payloads over the v2 sparse wire format
//	mttkrp-bench -serve-http -mmap                 # by-reference requests: server maps the tensor file, only factors cross the wire
//	mttkrp-bench -diff-base BENCH_a.json -diff-head BENCH_b.json  # delta table between two CI bench artifacts
//
// Each figure prints one table per subfigure with the same series the
// paper plots, followed by OBS lines summarizing the shape claims
// (speedups, ratios) recorded in EXPERIMENTS.md. The -serve mode drives
// identical concurrent MTTKRP load through the admission-controlled
// Server and through naive per-request pools, tabulating aggregate
// throughput and latency percentiles. The -serve-http mode ships full
// binary tensor payloads through the network transport (an in-process
// loopback listener unless -addr targets a live one) and splits served
// time into wire decode vs kernel compute.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/parallel"
	"repro/internal/simd"
)

func main() {
	cli.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the benchmark suite with explicit arguments and output
// streams so tests can drive it end to end.
func run(args []string, stdout, stderr io.Writer) error {
	// Banners report the host's actual scheduler width so runs on different
	// machines are comparable; that is reporting, not dispatch sizing, so
	// the raw read is deliberate.
	//lint:ignore mttkrp/effectiveresolve banners report the host width, not a dispatch width
	procs := runtime.GOMAXPROCS(0)
	fs := flag.NewFlagSet("mttkrp-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.String("fig", "all", "figure to regenerate: 4a, 4b, 5, 6, 7, 8, or all")
	scale := fs.Float64("scale", 0.01, "problem size as a fraction of the paper's (entry count)")
	paper := fs.Bool("paper", false, "use the paper's full problem sizes (overrides -scale; needs ~10 GB)")
	maxThreads := fs.Int("maxthreads", parallel.DefaultThreads(), "top of the thread sweep")
	trials := fs.Int("trials", 3, "timed repetitions per point (median reported)")
	csvDir := fs.String("csvdir", "", "also write every table as a CSV file into this directory")
	serveMode := fs.Bool("serve", false, "run the serving load generator instead of figure regeneration")
	serveHTTP := fs.Bool("serve-http", false, "run the HTTP transport load generator instead of figure regeneration")
	addr := fs.String("addr", "", "serve-http: base URL of a live listener (empty = in-process loopback)")
	conc := fs.Int("conc", 0, "serving: fixed concurrency level (0 = sweep 1, 4, 16)")
	requests := fs.Int("requests", 64, "serving: requests per concurrency level")
	sdims := fs.String("sdims", "48x40x36", "serving: tensor dims, e.g. 60x50x40")
	rank := fs.Int("rank", 16, "serving: CP rank / factor columns")
	mixSpec := fs.String("mix", "", "serving: heterogeneous workload mix, e.g. small:8,large:1 (classes small, medium, large scaled from -sdims/-rank; -serve compares cost-aware vs even-split admission per class with p99)")
	sparse := fs.Bool("sparse", false, "serving: generate COO tensors instead of dense ones (nnz-partitioned kernel, nnz-priced admission; -serve-http ships the v2 sparse wire format)")
	mmap := fs.Bool("mmap", false, "serve-http: ship by-reference requests (wire v3, /v1/mttkrp-ref) against an in-process listener with a tensor root — the tensor file is mapped server-side and only factors cross the wire (A/B against full payloads via the decode-share column)")
	density := fs.Float64("density", 0.01, "serving: fill fraction of the sparse tensors (with -sparse)")
	fuse := fs.String("fuse", "on", "serving: batch-level KRP fusion on the served side, on or off (run both for the A/B; tables carry a fuse-hit column)")
	simdAB := fs.String("simd", "on", "vectorized kernels, on or off (off forces the scalar reference; applies to -serve, -serve-http and -kernels)")
	numaAB := fs.String("numa", "off", "serving: topology-aware placement on the served side, on or off (on builds the server pool over the detected host topology — MTTKRP_TOPOLOGY overrides detection; run both for the A/B, results are bit-identical)")
	kernelsMode := fs.Bool("kernels", false, "print the per-kernel GFLOP/s table (scalar vs vectorized) instead of figure regeneration")
	kernelTime := fs.Duration("kernel-mintime", 20*time.Millisecond, "kernels: minimum measured time per cell (larger = steadier numbers)")
	diffBase := fs.String("diff-base", "", "base go-test-json benchmark artifact (BENCH_<sha>.json); with -diff-head, print the per-benchmark delta table and exit")
	diffHead := fs.String("diff-head", "", "head go-test-json benchmark artifact to compare against -diff-base")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return cli.UsageError{} // the FlagSet already printed message and usage
	}

	if (*diffBase == "") != (*diffHead == "") {
		return cli.UsageError{Msg: "-diff-base and -diff-head must be given together"}
	}
	if *diffBase != "" {
		if *serveMode || *serveHTTP || *kernelsMode {
			return cli.UsageError{Msg: "-diff-base/-diff-head is a standalone mode; drop the other mode flags"}
		}
		t, err := bench.DiffFiles(*diffBase, *diffHead)
		if err != nil {
			return err
		}
		t.Fprint(stdout)
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, []*bench.Table{t}); err != nil {
				return fmt.Errorf("csv: %w", err)
			}
		}
		return nil
	}
	if *serveMode && *serveHTTP {
		return cli.UsageError{Msg: "-serve and -serve-http are mutually exclusive"}
	}
	if *mixSpec != "" && !*serveMode && !*serveHTTP {
		return cli.UsageError{Msg: "-mix applies to the serving load generators; pass -serve or -serve-http"}
	}
	if *fuse != "on" && *fuse != "off" {
		return cli.UsageError{Msg: fmt.Sprintf("-fuse: unknown value %q (want on or off)", *fuse)}
	}
	fuseSet := false
	fs.Visit(func(f *flag.Flag) { fuseSet = fuseSet || f.Name == "fuse" })
	if fuseSet && !*serveMode && !*serveHTTP {
		return cli.UsageError{Msg: "-fuse applies to the serving load generators; pass -serve or -serve-http"}
	}
	noFusion := *fuse == "off"
	if *simdAB != "on" && *simdAB != "off" {
		return cli.UsageError{Msg: fmt.Sprintf("-simd: unknown value %q (want on or off)", *simdAB)}
	}
	simdSet := false
	fs.Visit(func(f *flag.Flag) { simdSet = simdSet || f.Name == "simd" })
	if simdSet && !*serveMode && !*serveHTTP && !*kernelsMode {
		return cli.UsageError{Msg: "-simd applies to the serving load generators and -kernels; pass -serve, -serve-http or -kernels"}
	}
	noSIMD := *simdAB == "off"
	if *numaAB != "on" && *numaAB != "off" {
		return cli.UsageError{Msg: fmt.Sprintf("-numa: unknown value %q (want on or off)", *numaAB)}
	}
	numaSet := false
	fs.Visit(func(f *flag.Flag) { numaSet = numaSet || f.Name == "numa" })
	if numaSet && !*serveMode && !*serveHTTP {
		return cli.UsageError{Msg: "-numa applies to the serving load generators; pass -serve or -serve-http"}
	}
	numaOn := *numaAB == "on"
	if *sparse && !*serveMode && !*serveHTTP {
		return cli.UsageError{Msg: "-sparse applies to the serving load generators; pass -serve or -serve-http"}
	}
	densitySet := false
	fs.Visit(func(f *flag.Flag) { densitySet = densitySet || f.Name == "density" })
	if densitySet && !*sparse {
		return cli.UsageError{Msg: "-density applies to the sparse workload; pass -sparse"}
	}
	if *sparse && (*density <= 0 || *density > 1) {
		return cli.UsageError{Msg: fmt.Sprintf("-density: %g out of range (0, 1]", *density)}
	}
	if *mmap && !*serveHTTP {
		return cli.UsageError{Msg: "-mmap applies to the HTTP load generator; pass -serve-http"}
	}
	if *mmap && *sparse {
		return cli.UsageError{Msg: "-mmap ships dense by-reference requests; drop -sparse"}
	}
	if *kernelsMode {
		if *serveMode || *serveHTTP {
			return cli.UsageError{Msg: "-kernels and the serving load generators are mutually exclusive"}
		}
		if noSIMD {
			prev := simd.Active()
			simd.Use(simd.Scalar())
			defer simd.Use(prev)
		}
		fmt.Fprintf(stdout, "# MTTKRP kernel micro-benchmarks — GOMAXPROCS=%d\n\n", procs)
		start := time.Now()
		t, err := bench.Kernels(bench.KernelsConfig{
			MinTime: *kernelTime,
			Out:     func(format string, a ...any) { fmt.Fprintf(stdout, format, a...) },
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		t.Fprint(stdout)
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, []*bench.Table{t}); err != nil {
				return fmt.Errorf("csv: %w", err)
			}
		}
		fmt.Fprintf(stdout, "# done in %v\n", time.Since(start).Round(time.Millisecond))
		return nil
	}
	if *serveMode || *serveHTTP {
		dims, err := cli.ParseDims(*sdims)
		if err != nil {
			return cli.UsageError{Msg: fmt.Sprintf("-sdims: %v", err)}
		}
		var levels []int
		if *conc > 0 {
			levels = []int{*conc}
		}
		if *serveHTTP {
			fmt.Fprintf(stdout, "# MTTKRP HTTP serving load — dims %v, rank %d, %d requests/level, GOMAXPROCS=%d\n\n",
				dims, *rank, *requests, procs)
			start := time.Now()
			t, err := bench.HTTPLoad(bench.HTTPLoadConfig{
				URL:      *addr,
				Dims:     dims,
				Rank:     *rank,
				Conc:     levels,
				Requests: *requests,
				Mix:      *mixSpec,
				Sparse:   *sparse,
				Density:  *density,
				Mmap:     *mmap,
				NoFusion: noFusion,
				NoSIMD:   noSIMD,
				NUMA:     numaOn,
				Out:      func(format string, a ...any) { fmt.Fprintf(stdout, format, a...) },
			})
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout)
			t.Fprint(stdout)
			if *csvDir != "" {
				if err := writeCSVs(*csvDir, []*bench.Table{t}); err != nil {
					return fmt.Errorf("csv: %w", err)
				}
			}
			fmt.Fprintf(stdout, "# done in %v\n", time.Since(start).Round(time.Millisecond))
			return nil
		}
		fmt.Fprintf(stdout, "# MTTKRP serving load — dims %v, rank %d, %d requests/level, GOMAXPROCS=%d\n\n",
			dims, *rank, *requests, procs)
		start := time.Now()
		t, err := bench.ServeLoad(bench.ServeLoadConfig{
			Dims:     dims,
			Rank:     *rank,
			Conc:     levels,
			Requests: *requests,
			Mix:      *mixSpec,
			Sparse:   *sparse,
			Density:  *density,
			NoFusion: noFusion,
			NoSIMD:   noSIMD,
			NUMA:     numaOn,
			Out:      func(format string, a ...any) { fmt.Fprintf(stdout, format, a...) },
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		t.Fprint(stdout)
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, []*bench.Table{t}); err != nil {
				return fmt.Errorf("csv: %w", err)
			}
		}
		fmt.Fprintf(stdout, "# done in %v\n", time.Since(start).Round(time.Millisecond))
		return nil
	}

	cfg := bench.Config{
		Scale:      *scale,
		MaxThreads: *maxThreads,
		Trials:     *trials,
		Out:        stdout,
	}
	if *paper {
		cfg.Scale = 1.0
	}

	fmt.Fprintf(stdout, "# MTTKRP benchmark suite — scale=%.4g, threads 1..%d, %d trials, GOMAXPROCS=%d\n\n",
		cfg.Scale, cfg.MaxThreads, cfg.Trials, procs)

	start := time.Now()
	ran := false
	var tables []*bench.Table
	want := strings.ToLower(*fig)
	runFig := func(name string, f func() []*bench.Table) {
		if want == "all" || want == name || (len(name) > 1 && want == name[:1] && name[1] >= 'a') {
			tables = append(tables, f()...)
			ran = true
		}
	}
	runFig("4a", func() []*bench.Table { return []*bench.Table{bench.Fig4(cfg, 25)} })
	runFig("4b", func() []*bench.Table { return []*bench.Table{bench.Fig4(cfg, 50)} })
	runFig("5", func() []*bench.Table { return bench.Fig5(cfg) })
	runFig("6", func() []*bench.Table { return bench.Fig6(cfg) })
	runFig("7", func() []*bench.Table { return bench.Fig7(cfg) })
	runFig("8", func() []*bench.Table { return bench.Fig8(cfg) })
	if !ran {
		return cli.UsageError{Msg: fmt.Sprintf("unknown figure %q (want 4a, 4b, 5, 6, 7, 8, or all)", *fig)}
	}
	if *csvDir != "" {
		if err := writeCSVs(*csvDir, tables); err != nil {
			return fmt.Errorf("csv: %w", err)
		}
		fmt.Fprintf(stdout, "# wrote %d CSV files to %s\n", len(tables), *csvDir)
	}
	fmt.Fprintf(stdout, "# done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// writeCSVs saves each table as <slug-of-title>.csv under dir.
func writeCSVs(dir string, tables []*bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range tables {
		name := fmt.Sprintf("%02d-%s.csv", i, cli.Slug(t.Title))
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
