// Command mttkrp-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	mttkrp-bench -fig all                  # every figure at laptop scale
//	mttkrp-bench -fig 5 -scale 0.05        # Figure 5 at 5% of paper size
//	mttkrp-bench -fig 4a -maxthreads 12    # Figure 4a with a 1..12 sweep
//	mttkrp-bench -fig 7 -paper             # paper-sized (needs a big server)
//
// Each figure prints one table per subfigure with the same series the
// paper plots, followed by OBS lines summarizing the shape claims
// (speedups, ratios) recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4a, 4b, 5, 6, 7, 8, or all")
	scale := flag.Float64("scale", 0.01, "problem size as a fraction of the paper's (entry count)")
	paper := flag.Bool("paper", false, "use the paper's full problem sizes (overrides -scale; needs ~10 GB)")
	maxThreads := flag.Int("maxthreads", runtime.GOMAXPROCS(0), "top of the thread sweep")
	trials := flag.Int("trials", 3, "timed repetitions per point (median reported)")
	csvDir := flag.String("csvdir", "", "also write every table as a CSV file into this directory")
	flag.Parse()

	cfg := bench.Config{
		Scale:      *scale,
		MaxThreads: *maxThreads,
		Trials:     *trials,
		Out:        os.Stdout,
	}
	if *paper {
		cfg.Scale = 1.0
	}

	fmt.Printf("# MTTKRP benchmark suite — scale=%.4g, threads 1..%d, %d trials, GOMAXPROCS=%d\n\n",
		cfg.Scale, cfg.MaxThreads, cfg.Trials, runtime.GOMAXPROCS(0))

	start := time.Now()
	ran := false
	var tables []*bench.Table
	want := strings.ToLower(*fig)
	run := func(name string, f func() []*bench.Table) {
		if want == "all" || want == name || (len(name) > 1 && want == name[:1] && name[1] >= 'a') {
			tables = append(tables, f()...)
			ran = true
		}
	}
	run("4a", func() []*bench.Table { return []*bench.Table{bench.Fig4(cfg, 25)} })
	run("4b", func() []*bench.Table { return []*bench.Table{bench.Fig4(cfg, 50)} })
	run("5", func() []*bench.Table { return bench.Fig5(cfg) })
	run("6", func() []*bench.Table { return bench.Fig6(cfg) })
	run("7", func() []*bench.Table { return bench.Fig7(cfg) })
	run("8", func() []*bench.Table { return bench.Fig8(cfg) })
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 4a, 4b, 5, 6, 7, 8, or all)\n", *fig)
		os.Exit(2)
	}
	if *csvDir != "" {
		if err := writeCSVs(*csvDir, tables); err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %d CSV files to %s\n", len(tables), *csvDir)
	}
	fmt.Printf("# done in %v\n", time.Since(start).Round(time.Millisecond))
}

// writeCSVs saves each table as <slug-of-title>.csv under dir.
func writeCSVs(dir string, tables []*bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range tables {
		name := fmt.Sprintf("%02d-%s.csv", i, cli.Slug(t.Title))
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
