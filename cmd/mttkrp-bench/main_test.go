package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig4Tiny(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-fig", "4a", "-scale", "0.0002", "-maxthreads", "2", "-trials", "1"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"MTTKRP benchmark suite", "# done in"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunFig5TinyWithCSV(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	err := run([]string{"-fig", "5", "-scale", "0.0002", "-maxthreads", "2", "-trials", "1", "-csvdir", dir}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no CSV files written to %s (err %v)", dir, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Errorf("CSV file %s is empty", files[0])
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-fig", "99"}, &out, &errOut); err == nil {
		t.Fatal("run with unknown figure succeeded, want error")
	}
}

func TestRunServeLoadTiny(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-serve", "-conc", "2", "-requests", "8", "-sdims", "10x8x6", "-rank", "4"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"MTTKRP serving load", "Serving throughput", "OBS serve conc=2", "# done in"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestRunServeMixTiny drives the heterogeneous-workload policy comparison
// end to end: per-class rows for both admission policies with a p99
// column.
func TestRunServeMixTiny(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-serve", "-mix", "small:4,large:1", "-conc", "2", "-requests", "12", "-sdims", "16x12x10", "-rank", "8"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"Mixed serving load", "cost-aware", "even-split", "small", "large", "p99 ms", "OBS mix conc=2", "# done in"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestRunServeHTTPMixTiny drives the mixed workload over the in-process
// HTTP listener.
func TestRunServeHTTPMixTiny(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-serve-http", "-mix", "small:4,large:1", "-conc", "2", "-requests", "12", "-sdims", "16x12x10", "-rank", "8"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"HTTP mixed serving load", "small", "large", "p99 ms", "rejected", "# done in"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestRunServeSparseTiny drives the COO workload through the in-process
// serving load generator: the table is tagged with the layout and nnz,
// and the naive-vs-served comparison runs the sparse kernel on both sides.
func TestRunServeSparseTiny(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-serve", "-sparse", "-density", "0.05", "-conc", "2", "-requests", "8", "-sdims", "14x12x10", "-rank", "4"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"Serving throughput", "sparse d=0.05", "nnz", "OBS serve conc=2", "# done in"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestRunServeHTTPSparseTiny ships COO payloads over the v2 sparse wire
// format against the in-process listener.
func TestRunServeHTTPSparseTiny(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-serve-http", "-sparse", "-conc", "2", "-requests", "8", "-sdims", "14x12x10", "-rank", "4"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"HTTP transport throughput", "sparse d=0.01", "decode", "compute", "# done in"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSparseFlagValidation(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-sparse"}, &out, &errOut); err == nil {
		t.Fatal("-sparse without a serving mode accepted")
	}
	if err := run([]string{"-serve", "-density", "0.1"}, &out, &errOut); err == nil {
		t.Fatal("-density without -sparse accepted")
	}
	if err := run([]string{"-serve", "-sparse", "-density", "2"}, &out, &errOut); err == nil {
		t.Fatal("out-of-range -density accepted")
	}
}

func TestRunMixFlagValidation(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-mix", "small:1"}, &out, &errOut); err == nil {
		t.Fatal("-mix without a serving mode accepted")
	}
	if err := run([]string{"-serve", "-mix", "nope"}, &out, &errOut); err == nil {
		t.Fatal("malformed -mix accepted")
	}
	if err := run([]string{"-serve", "-mix", "galactic:1"}, &out, &errOut); err == nil {
		t.Fatal("unknown mix class accepted")
	}
}

func TestRunServeBadDims(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-serve", "-sdims", "nope"}, &out, &errOut); err == nil {
		t.Fatal("bad -sdims accepted")
	}
}

// TestRunServeHTTPTiny drives the HTTP load generator against its
// in-process loopback listener: the acceptance path for
// `mttkrp-bench -serve-http` — req/s plus p50/p95 with decode time
// separated from kernel time.
func TestRunServeHTTPTiny(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-serve-http", "-conc", "2", "-requests", "8", "-sdims", "10x8x6", "-rank", "4"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	s := out.String()
	for _, want := range []string{
		"MTTKRP HTTP serving load", "HTTP transport throughput",
		"OBS http conc=2", "decode", "compute", "p50 ms", "p95 ms", "# done in",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunServeModesExclusive(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-serve", "-serve-http"}, &out, &errOut); err == nil {
		t.Fatal("-serve with -serve-http accepted")
	}
}

// TestRunKernelsTiny drives the per-kernel GFLOP/s table end to end: one
// row per (kernel, size) with a scalar column, a vector column and the
// speedup ratio the acceptance criteria gate on.
func TestRunKernelsTiny(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-kernels", "-kernel-mintime", "1ms"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	s := out.String()
	for _, want := range []string{
		"Kernel micro-benchmarks", "scalar GFLOP/s", "gemm4x4", "hadexpand", "# done in",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSimdFlagValidation(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-simd", "off"}, &out, &errOut); err == nil {
		t.Fatal("-simd without a serving or kernels mode accepted")
	}
	if err := run([]string{"-serve", "-simd", "sometimes"}, &out, &errOut); err == nil {
		t.Fatal("malformed -simd accepted")
	}
	if err := run([]string{"-kernels", "-serve"}, &out, &errOut); err == nil {
		t.Fatal("-kernels with -serve accepted")
	}
}

// TestRunServeSimdOff is the A/B's off half at smoke scale: the table
// banner must record the scalar dispatch so runs are attributable.
func TestRunServeSimdOff(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-serve", "-simd=off", "-conc", "2", "-requests", "8", "-sdims", "10x8x6", "-rank", "4"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if !strings.Contains(out.String(), "simd off") {
		t.Errorf("banner missing simd state:\n%s", out.String())
	}
}
