package main

import (
	"bufio"
	"errors"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro"
)

// TestE2EHTTPListenerDrain is the end-to-end exercise the CI listener job
// runs: build the real binary, start it with -listen on a random port,
// drive it with repro.Client — one MTTKRP (checked against the local
// kernel), one CP, one quota-rejected request — then SIGTERM it and
// assert a clean drain (exit status 0, drain summary on stderr).
func TestE2EHTTPListenerDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "mttkrp-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// A 64 KiB in-flight byte cap: the small workload requests sail
	// through; the deliberately large one is quota-rejected — no timing
	// dependence, unlike a rate-bucket refill.
	cmd := exec.Command(bin, "-listen", "127.0.0.1:0", "-workers", "2", "-maxinflight", "65536")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() // no-op after a clean Wait

	// The daemon prints the resolved address before serving.
	sc := bufio.NewScanner(stderr)
	var baseURL string
	addrRE := regexp.MustCompile(`listening on (http://\S+)`)
	deadline := time.After(30 * time.Second)
	addrCh := make(chan string, 1)
	tail := make(chan string, 1)
	go func() {
		var lines []string
		for sc.Scan() {
			line := sc.Text()
			lines = append(lines, line)
			if m := addrRE.FindStringSubmatch(line); m != nil {
				addrCh <- m[1]
			}
		}
		tail <- strings.Join(lines, "\n")
	}()
	select {
	case baseURL = <-addrCh:
	case <-deadline:
		t.Fatal("daemon never reported its listen address")
	}

	c := repro.NewClient(baseURL)
	c.APIKey = "e2e"

	// One MTTKRP, checked against the local kernel on identical inputs.
	x := repro.RandomTensor(newRNG(7), 14, 12, 10) // ~13 KiB payload with factors
	u := make([]repro.Matrix, x.Order())
	rng := newRNG(8)
	for k := range u {
		u[k] = repro.RandomMatrix(x.Dim(k), 6, rng)
	}
	got, tm, err := c.MTTKRP(repro.Matrix{}, x, u, 1, repro.MethodAuto)
	if err != nil {
		t.Fatalf("served MTTKRP: %v", err)
	}
	want := repro.MTTKRP(x, u, 1, repro.MTTKRPOptions{})
	if got.R != want.R || got.C != want.C {
		t.Fatalf("served %dx%d, want %dx%d", got.R, got.C, want.R, want.C)
	}
	for i := 0; i < want.R; i++ {
		for j := 0; j < want.C; j++ {
			d := got.At(i, j) - want.At(i, j)
			if d > 1e-12 || d < -1e-12 {
				t.Fatalf("served result diverges at (%d,%d)", i, j)
			}
		}
	}
	if tm.Compute <= 0 {
		t.Fatalf("missing server timing: %+v", tm)
	}

	// One CP.
	cx := repro.RandomTensor(newRNG(9), 10, 9, 8)
	cp, _, err := c.CP(cx, 3, 4, 42)
	if err != nil {
		t.Fatalf("served CP: %v", err)
	}
	if cp.Iters != 4 || cp.Fit <= 0 || cp.Fit > 1 || len(cp.K.Factors) != 3 {
		t.Fatalf("served CP result: %+v", cp)
	}

	// One quota-rejected request: ~303 KiB of payload against the 64 KiB
	// in-flight cap.
	bx := repro.RandomTensor(newRNG(10), 36, 32, 30)
	bu := make([]repro.Matrix, bx.Order())
	for k := range bu {
		bu[k] = repro.RandomMatrix(bx.Dim(k), 4, rng)
	}
	_, _, err = c.MTTKRP(repro.Matrix{}, bx, bu, 0, repro.MethodAuto)
	var he *repro.TransportError
	if !errors.As(err, &he) || he.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized request: %v, want HTTP 429", err)
	}

	// Clean SIGTERM drain: exit 0 and a drain summary. Read stderr to EOF
	// before Wait — Wait closes the pipe, which can race the scanner out
	// of the daemon's final lines.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var stderrText string
	select {
	case stderrText = <-tail:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain within 30s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
	}
	if !strings.Contains(stderrText, "drained —") {
		t.Fatalf("missing drain summary on stderr:\n%s", stderrText)
	}
	if !strings.Contains(stderrText, "quota-rejected") {
		t.Fatalf("drain summary lacks quota counters:\n%s", stderrText)
	}
	// A post-drain request must fail — the listener is gone.
	if err := c.Healthy(); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestE2EHTTPByRefDrain is the out-of-core flow end to end: the real
// binary with -tensor-root, a tensor file written under the root, one
// by-reference MTTKRP (only factors cross the wire; the server maps the
// file) checked against the local kernel, one sandbox rejection, then a
// clean SIGTERM drain.
func TestE2EHTTPByRefDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "mttkrp-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	root := t.TempDir()
	x := repro.RandomTensor(newRNG(21), 24, 20, 16)
	if err := repro.WriteDenseFile(filepath.Join(root, "x.dsnt"), x); err != nil {
		t.Fatalf("WriteDenseFile: %v", err)
	}
	info, err := repro.StatDenseFile(filepath.Join(root, "x.dsnt"))
	if err != nil {
		t.Fatalf("StatDenseFile: %v", err)
	}

	cmd := exec.Command(bin, "-listen", "127.0.0.1:0", "-workers", "2", "-tensor-root", root)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stderr)
	var baseURL string
	addrRE := regexp.MustCompile(`listening on (http://\S+)`)
	addrCh := make(chan string, 1)
	tail := make(chan string, 1)
	go func() {
		var lines []string
		for sc.Scan() {
			line := sc.Text()
			lines = append(lines, line)
			if m := addrRE.FindStringSubmatch(line); m != nil {
				addrCh <- m[1]
			}
		}
		tail <- strings.Join(lines, "\n")
	}()
	select {
	case baseURL = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never reported its listen address")
	}

	c := repro.NewClient(baseURL)
	c.APIKey = "e2e-byref"

	u := make([]repro.Matrix, x.Order())
	rng := newRNG(22)
	for k := range u {
		u[k] = repro.RandomMatrix(x.Dim(k), 8, rng)
	}
	ref := repro.TensorRefFor(info, "x.dsnt")
	got, tm, err := c.MTTKRPByRef(repro.Matrix{}, ref, x.Dims(), u, 1, repro.MethodAuto)
	if err != nil {
		t.Fatalf("served by-ref MTTKRP: %v", err)
	}
	want := repro.MTTKRP(x, u, 1, repro.MTTKRPOptions{})
	if got.R != want.R || got.C != want.C {
		t.Fatalf("served %dx%d, want %dx%d", got.R, got.C, want.R, want.C)
	}
	for i := 0; i < want.R; i++ {
		for j := 0; j < want.C; j++ {
			d := got.At(i, j) - want.At(i, j)
			if d > 1e-12 || d < -1e-12 {
				t.Fatalf("served by-ref result diverges at (%d,%d)", i, j)
			}
		}
	}
	if tm.Compute <= 0 {
		t.Fatalf("missing server timing: %+v", tm)
	}

	// A path escaping the root must be rejected as structurally illegal.
	bad := ref
	bad.Path = "../x.dsnt"
	_, _, err = c.MTTKRPByRef(repro.Matrix{}, bad, x.Dims(), u, 1, repro.MethodAuto)
	var he *repro.TransportError
	if !errors.As(err, &he) || he.StatusCode != http.StatusBadRequest {
		t.Fatalf("escaping ref: %v, want HTTP 400", err)
	}

	// Read stderr to EOF before Wait — Wait closes the pipe, which can
	// race the scanner out of the daemon's final lines.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var stderrText string
	select {
	case stderrText = <-tail:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain within 30s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
	}
	if !strings.Contains(stderrText, "drained —") {
		t.Fatalf("missing drain summary on stderr:\n%s", stderrText)
	}
}
