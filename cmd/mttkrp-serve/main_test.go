package main

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro"
	"repro/internal/simd"
)

// decodeAll parses every response line the daemon wrote.
func decodeAll(t *testing.T, out string) map[string]response {
	t.Helper()
	got := make(map[string]response)
	dec := json.NewDecoder(strings.NewReader(out))
	for dec.More() {
		var r response
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("bad response stream: %v\noutput:\n%s", err, out)
		}
		got[r.ID] = r
	}
	return got
}

// TestServeDaemonEndToEnd drives the daemon over the stdin-jsonl protocol:
// concurrent same-shape MTTKRP requests, a CP run, a stats probe, and
// error paths — and checks the MTTKRP checksum against a direct
// computation on the same deterministic problem.
func TestServeDaemonEndToEnd(t *testing.T) {
	script := strings.Join([]string{
		`{"id":"m1","op":"mttkrp","dims":[12,10,8],"rank":5,"mode":1,"seed":3}`,
		`{"id":"m2","op":"mttkrp","dims":[12,10,8],"rank":5,"mode":1,"seed":3}`,
		`{"id":"m3","op":"mttkrp","dims":[12,10,8],"rank":5,"mode":1,"seed":3,"method":"2step"}`,
		`{"id":"c1","op":"cp","dims":[9,8,7],"rank":3,"iters":3,"seed":1}`,
		`{"id":"sp1","op":"mttkrp","dims":[12,10,8],"rank":5,"mode":1,"seed":3,"density":0.1}`,
		`{"id":"bad-op","op":"frobnicate"}`,
		`{"id":"bad-dims","op":"mttkrp","dims":[12],"rank":5,"mode":0,"seed":3}`,
		`{"id":"bad-density","op":"mttkrp","dims":[12,10,8],"rank":5,"mode":1,"seed":3,"density":2}`,
		``,
		`# comments and blank lines are ignored`,
		`{"id":"s1","op":"stats"}`,
	}, "\n")

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-workers", "4"}, strings.NewReader(script), &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	got := decodeAll(t, stdout.String())
	if len(got) != 9 {
		t.Fatalf("got %d responses, want 9:\n%s", len(got), stdout.String())
	}

	// Reference checksum computed directly on the same deterministic
	// problem the daemon generated.
	rng := newRNG(3)
	x := repro.RandomTensor(rng, 12, 10, 8)
	u := make([]repro.Matrix, 3)
	for k := range u {
		u[k] = repro.RandomMatrix(x.Dim(k), 5, rng)
	}
	m := repro.MTTKRP(x, u, 1, repro.MTTKRPOptions{Threads: 2})
	want := matSum(m)

	for _, id := range []string{"m1", "m2", "m3"} {
		r := got[id]
		if !r.OK {
			t.Fatalf("%s failed: %s", id, r.Err)
		}
		if r.Rows != 10 || r.Cols != 5 {
			t.Fatalf("%s: result %dx%d, want 10x5", id, r.Rows, r.Cols)
		}
		if math.Abs(r.Sum-want) > 1e-8*math.Abs(want) {
			t.Fatalf("%s: sum %v, want %v", id, r.Sum, want)
		}
	}
	cp := got["c1"]
	if !cp.OK || cp.Iters != 3 || cp.Fit <= 0 || cp.Fit > 1 {
		t.Fatalf("c1: %+v", cp)
	}

	// The sparse request runs against the daemon's deterministic COO
	// problem; recompute its checksum through the shape-generic facade.
	srng := newRNG(3)
	sx := repro.RandomSparseTensor(srng, 0.1, 12, 10, 8)
	su := make([]repro.Matrix, 3)
	for k := range su {
		su[k] = repro.RandomMatrix(sx.Dim(k), 5, srng)
	}
	sparseWant := matSum(repro.MTTKRP(sx, su, 1, repro.MTTKRPOptions{Threads: 2}))
	sp := got["sp1"]
	if !sp.OK {
		t.Fatalf("sp1 failed: %s", sp.Err)
	}
	if sp.Rows != 10 || sp.Cols != 5 {
		t.Fatalf("sp1: result %dx%d, want 10x5", sp.Rows, sp.Cols)
	}
	if math.Abs(sp.Sum-sparseWant) > 1e-8*math.Abs(sparseWant) {
		t.Fatalf("sp1: sum %v, want %v", sp.Sum, sparseWant)
	}

	for _, id := range []string{"bad-op", "bad-dims", "bad-density"} {
		if r := got[id]; r.OK || r.Err == "" {
			t.Fatalf("%s: expected an error response, got %+v", id, r)
		}
	}
	st := got["s1"]
	if !st.OK || st.Stats == nil {
		t.Fatalf("s1: %+v", st)
	}
	if !strings.Contains(stderr.String(), "done —") {
		t.Fatalf("missing summary on stderr:\n%s", stderr.String())
	}
}

// TestServeDaemonResourceCaps pins that one request line cannot allocate
// an unbounded tensor and that the problem cache stays bounded.
func TestServeDaemonResourceCaps(t *testing.T) {
	c := &problemCache{}
	if _, err := c.get([]int{4096, 4096, 4096}, 1, 1, 0); err == nil {
		t.Fatal("oversized tensor accepted")
	}
	if _, err := c.get([]int{2, 2, 2, 2, 2, 2, 2, 2, 2}, 1, 1, 0); err == nil {
		t.Fatal("order-9 tensor accepted (cap is 8)")
	}
	if _, err := c.get([]int{4, 3, 2}, 2, 1, 1.5); err == nil {
		t.Fatal("density > 1 accepted")
	}
	for seed := int64(0); seed < maxCachedProbs+10; seed++ {
		if _, err := c.get([]int{4, 3, 2}, 2, seed, 0); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.m) > maxCachedProbs {
		t.Fatalf("%d problems cached, cap is %d", len(c.m), maxCachedProbs)
	}
}

// TestServeDaemonUsageErrors pins flag handling.
func TestServeDaemonUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-definitely-not-a-flag"}, strings.NewReader(""), &stdout, &stderr)
	if err == nil {
		t.Fatal("bad flag accepted")
	}
	err = run([]string{"positional"}, strings.NewReader(""), &stdout, &stderr)
	if err == nil {
		t.Fatal("positional argument accepted")
	}
}

// TestServeDaemonNoSIMD pins the -nosimd escape hatch: the daemon selects
// the scalar dispatch, and the served checksum still matches a direct
// computation under the default (possibly vectorized) dispatch — the
// daemon-level face of the simd bit-identity contract.
func TestServeDaemonNoSIMD(t *testing.T) {
	prev := simd.Active()
	defer simd.Use(prev)

	// Reference under the default dispatch, before the daemon swaps it.
	rng := newRNG(3)
	x := repro.RandomTensor(rng, 12, 10, 8)
	u := make([]repro.Matrix, 3)
	for k := range u {
		u[k] = repro.RandomMatrix(x.Dim(k), 5, rng)
	}
	want := matSum(repro.MTTKRP(x, u, 1, repro.MTTKRPOptions{Threads: 2}))

	script := `{"id":"m1","op":"mttkrp","dims":[12,10,8],"rank":5,"mode":1,"seed":3}`
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-workers", "2", "-nosimd"}, strings.NewReader(script), &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	if simd.Active() != simd.Scalar() {
		t.Error("-nosimd did not select the scalar dispatch")
	}
	r := decodeAll(t, stdout.String())["m1"]
	if !r.OK {
		t.Fatalf("m1 failed: %s", r.Err)
	}
	if r.Sum != want {
		t.Fatalf("scalar-dispatch sum %v != default-dispatch sum %v", r.Sum, want)
	}
}
