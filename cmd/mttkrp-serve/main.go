// Command mttkrp-serve is the serving daemon over the concurrent
// scheduler, with two front ends sharing one admission-controlled worker
// pool:
//
// Stdin-jsonl (the default): one JSON request per line on stdin, one JSON
// response per line on stdout, in completion order (responses carry the
// request id). Tensors are generated deterministically from (dims, seed)
// and cached server-side:
//
//	{"id":"a1","op":"mttkrp","dims":[60,50,40],"rank":8,"mode":1,"seed":3}
//	{"id":"a2","op":"cp","dims":[30,30,30],"rank":4,"iters":5,"seed":1}
//	{"id":"a3","op":"mttkrp","dims":[60,50,40],"rank":8,"mode":1,"seed":3,"density":0.01}
//	{"id":"a4","op":"stats"}
//
// A "density" in (0, 1] generates a sparse (COO) tensor at that fill
// fraction instead of a dense one; the request then runs the
// nnz-partitioned sparse kernel and is priced by its stored entries.
//
// HTTP (-listen addr): a network listener speaking the compact binary
// wire format of internal/transport — clients ship real tensor payloads
// (POST /v1/mttkrp, /v1/cp; GET /v1/stats, /healthz), per-client
// token-bucket quotas apply (-rps, -burst, -maxinflight, keyed by the
// X-API-Key header), and SIGTERM drains gracefully: admitted tickets
// finish, new submissions see 503, then the process exits 0. With
// -tensor-root DIR, clients may additionally POST by-reference requests
// (/v1/mttkrp-ref) naming a mappable tensor file inside DIR instead of
// shipping the tensor payload; the server maps the file and streams the
// kernel through row tiles, so the referenced tensor may exceed RAM.
//
// Usage:
//
//	mttkrp-serve [-workers N] [-minworkers N] [-maxactive N] [-nobatch] [-evensplit] [-maxshare F] [-numa on|off]
//	mttkrp-serve -listen :8080 [-rps R] [-burst B] [-maxinflight BYTES] [-maxpayload BYTES] [-maxqueuedelay D] [-tensor-root DIR]
//
// Admission is cost-aware by default: budgets are weighted by request
// cost (tensor size × rank), the queue ages so small requests are not
// convoyed behind large ones, and running leases are rebalanced at
// kernel phase boundaries; -evensplit restores the historical
// width ÷ active FIFO policy. HTTP clients may send X-Cost-Hint and
// X-Priority (low|normal|high) headers; with -maxqueuedelay the daemon
// sheds (429 + Retry-After) requests whose projected queue delay
// exceeds it.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/simd"
)

func main() {
	cli.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// request is one protocol line.
type request struct {
	ID     string `json:"id"`
	Op     string `json:"op"`     // "mttkrp", "cp" or "stats"
	Dims   []int  `json:"dims"`   // tensor shape
	Rank   int    `json:"rank"`   // C
	Mode   int    `json:"mode"`   // MTTKRP mode n
	Method string `json:"method"` // "auto" (default), "1step", "2step", "reorder"
	Seed   int64  `json:"seed"`   // tensor/factor generator seed
	Iters  int    `json:"iters"`  // CP sweeps (default 10)
	// Density in (0, 1] makes the generated tensor sparse (COO) at that
	// fill fraction; 0 (the default) keeps it dense.
	Density float64 `json:"density"`
}

// response is one protocol line back.
type response struct {
	ID    string             `json:"id"`
	OK    bool               `json:"ok"`
	Err   string             `json:"error,omitempty"`
	Rows  int                `json:"rows,omitempty"`
	Cols  int                `json:"cols,omitempty"`
	Sum   float64            `json:"sum,omitempty"`
	Fit   float64            `json:"fit,omitempty"`
	Iters int                `json:"iters,omitempty"`
	Ms    float64            `json:"ms"`
	Stats *repro.ServerStats `json:"stats,omitempty"`
}

// problemCache builds and retains the deterministic (dims, seed, rank)
// tensors and factor sets the daemon serves against.
type problemCache struct {
	mu sync.Mutex
	m  map[string]*problem
}

type problem struct {
	x repro.AnyTensor
	u []repro.Matrix
}

// Resource ceilings for one cached problem and for the cache as a whole:
// a request line must not be able to OOM the daemon, and a varied
// workload must not grow memory without bound.
const (
	maxOrder       = 8
	maxEntries     = 1 << 24 // ≤ 128 MiB of float64 tensor per problem
	maxCachedProbs = 32
)

func (c *problemCache) get(dims []int, rank int, seed int64, density float64) (*problem, error) {
	if len(dims) < 2 || len(dims) > maxOrder {
		return nil, fmt.Errorf("need 2..%d dims, got %v", maxOrder, dims)
	}
	entries := 1
	for _, d := range dims {
		if d < 1 || d > 1<<12 {
			return nil, fmt.Errorf("dimension %d out of range [1, 4096]", d)
		}
		if entries > maxEntries/d {
			return nil, fmt.Errorf("tensor %v exceeds the %d-entry serving cap", dims, maxEntries)
		}
		entries *= d
	}
	if rank < 1 || rank > 1<<10 {
		return nil, fmt.Errorf("rank %d out of range [1, 1024]", rank)
	}
	if density < 0 || density > 1 {
		return nil, fmt.Errorf("density %g out of range (0, 1]", density)
	}
	key := fmt.Sprintf("%v|c%d|s%d|d%g", dims, rank, seed, density)
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.m[key]; ok {
		return p, nil
	}
	rng := newRNG(seed)
	p := &problem{}
	if density > 0 {
		p.x = repro.RandomSparseTensor(rng, density, dims...)
	} else {
		p.x = repro.RandomTensor(rng, dims...)
	}
	for k := 0; k < p.x.Order(); k++ {
		p.u = append(p.u, repro.RandomMatrix(p.x.Dim(k), rank, rng))
	}
	if c.m == nil {
		c.m = make(map[string]*problem)
	}
	if len(c.m) >= maxCachedProbs {
		// Evict one arbitrary resident (map order): keeps the cache
		// bounded without bookkeeping; a re-requested problem regenerates
		// deterministically from its seed.
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[key] = p
	return p, nil
}

// newRNG is the daemon's deterministic generator: one seed fully
// determines a problem, so a load generator and a checker agree on sums.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func parseMethod(s string) (repro.Method, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return repro.MethodAuto, nil
	case "1step", "onestep", "1-step":
		return repro.MethodOneStep, nil
	case "2step", "twostep", "2-step":
		return repro.MethodTwoStep, nil
	case "reorder":
		return repro.MethodReorder, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

// run is the daemon body with explicit streams so tests can drive it.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mttkrp-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workers := fs.Int("workers", 0, "server pool width (0 = GOMAXPROCS)")
	minWorkers := fs.Int("minworkers", 1, "admission floor: minimum workers per request")
	maxActive := fs.Int("maxactive", 0, "max concurrently executing requests (0 = workers/minworkers)")
	noBatch := fs.Bool("nobatch", false, "disable same-shape request batching")
	noFuse := fs.Bool("nofuse", false, "disable batch-level KRP fusion (coalesced batches recompute the Khatri-Rao intermediate per member; the measured baseline)")
	noSIMD := fs.Bool("nosimd", false, "force the scalar reference kernels for this process (equivalent to MTTKRP_NOSIMD=1; the -simd A/B's served half)")
	numa := fs.String("numa", "off", "topology-aware placement, on or off (on builds the worker pool over the detected host topology — NUMA-node domains from sysfs, MTTKRP_TOPOLOGY override — so leases pack into domains and buffers are first-touched locally; results are bit-identical either way, and single-domain hosts fall back to the flat model)")
	evenSplit := fs.Bool("evensplit", false, "revert admission to the even-split FIFO policy (baseline; default is cost-aware with an aging queue)")
	maxShare := fs.Float64("maxshare", 0, "cost-aware admission: cap one request's share of the pool width, 0 < v <= 1 (0 = no cap)")
	maxQueueDelay := fs.Duration("maxqueuedelay", 0, "HTTP: shed requests (429) whose projected queue delay exceeds this (0 = queue everything)")
	listen := fs.String("listen", "", "serve the binary HTTP transport on this address (e.g. :8080) instead of stdin-jsonl")
	rps := fs.Float64("rps", 0, "HTTP: per-client sustained request rate (0 = unlimited)")
	burst := fs.Int("burst", 0, "HTTP: per-client burst depth (0 = ceil(rps))")
	maxInflight := fs.Int64("maxinflight", 0, "HTTP: per-client in-flight payload byte cap (0 = unlimited)")
	maxPayload := fs.Int64("maxpayload", 0, "HTTP: largest accepted request payload in bytes (0 = 1 GiB)")
	tensorRoot := fs.String("tensor-root", "", "HTTP: enable by-reference requests (/v1/mttkrp-ref) resolving tensor files inside this directory (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return cli.UsageError{} // the FlagSet already printed message and usage
	}
	if fs.NArg() > 0 {
		return cli.UsageError{Msg: fmt.Sprintf("unexpected argument %q (requests arrive on stdin or -listen)", fs.Arg(0))}
	}
	if *listen == "" && (*rps != 0 || *burst != 0 || *maxInflight != 0 || *maxPayload != 0 || *maxQueueDelay != 0 || *tensorRoot != "") {
		return cli.UsageError{Msg: "-rps/-burst/-maxinflight/-maxpayload/-maxqueuedelay/-tensor-root apply to the HTTP front end; pass -listen"}
	}
	if *numa != "on" && *numa != "off" {
		return cli.UsageError{Msg: fmt.Sprintf("-numa: unknown value %q (want on or off)", *numa)}
	}
	if *noSIMD {
		// Before any serving work starts: the dispatch swap is process-global
		// and unsynchronized by design (see internal/simd).
		simd.Use(simd.Scalar())
	}

	serveCfg := repro.ServerConfig{
		Workers:         *workers,
		MinWorkers:      *minWorkers,
		MaxActive:       *maxActive,
		DisableBatching: *noBatch,
		DisableFusion:   *noFuse,
		EvenSplit:       *evenSplit,
		MaxShare:        *maxShare,
	}
	if *numa == "on" {
		topo := repro.DetectTopology()
		serveCfg.Topology = topo
		fmt.Fprintf(stderr, "mttkrp-serve: placement on — %s\n", topo)
	}

	if *listen != "" {
		return runHTTP(*listen, repro.TransportConfig{
			Serve: serveCfg,
			Quota: repro.QuotaConfig{
				RequestsPerSec:   *rps,
				Burst:            *burst,
				MaxInflightBytes: *maxInflight,
			},
			MaxPayloadBytes: *maxPayload,
			MaxQueueDelay:   *maxQueueDelay,
			TensorRoot:      *tensorRoot,
		}, stderr)
	}

	srv := repro.NewServer(serveCfg)
	fmt.Fprintf(stderr, "mttkrp-serve: %d workers, floor %d, serving on stdin\n", srv.Workers(), *minWorkers)

	var outMu sync.Mutex
	enc := json.NewEncoder(stdout)
	emit := func(r response) {
		outMu.Lock()
		enc.Encode(r)
		outMu.Unlock()
	}

	cache := &problemCache{}
	var wg sync.WaitGroup
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var req request
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			emit(response{ID: req.ID, Err: fmt.Sprintf("line %d: %v", lineNo, err)})
			continue
		}
		if req.ID == "" {
			req.ID = fmt.Sprintf("line-%d", lineNo)
		}
		switch req.Op {
		case "stats":
			st := srv.Stats()
			emit(response{ID: req.ID, OK: true, Stats: &st})
		case "mttkrp":
			method, err := parseMethod(req.Method)
			if err != nil {
				emit(response{ID: req.ID, Err: err.Error()})
				continue
			}
			p, err := cache.get(req.Dims, req.Rank, req.Seed, req.Density)
			if err != nil {
				emit(response{ID: req.ID, Err: err.Error()})
				continue
			}
			start := time.Now()
			tk := srv.SubmitMTTKRP(repro.MTTKRPRequest{X: p.x, Factors: p.u, Mode: req.Mode, Method: method})
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				m, err := tk.MTTKRP()
				ms := float64(time.Since(start).Microseconds()) / 1e3
				if err != nil {
					emit(response{ID: id, Err: err.Error(), Ms: ms})
					return
				}
				emit(response{ID: id, OK: true, Rows: m.R, Cols: m.C, Sum: matSum(m), Ms: ms})
			}(req.ID)
		case "cp":
			p, err := cache.get(req.Dims, req.Rank, req.Seed, req.Density)
			if err != nil {
				emit(response{ID: req.ID, Err: err.Error()})
				continue
			}
			iters := req.Iters
			if iters <= 0 {
				iters = 10
			}
			start := time.Now()
			tk := srv.SubmitCP(repro.CPRequest{X: p.x, Config: repro.CPConfig{
				Rank: req.Rank, MaxIters: iters, Tol: -1, Seed: req.Seed,
			}})
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				res, err := tk.CP()
				ms := float64(time.Since(start).Microseconds()) / 1e3
				if err != nil {
					emit(response{ID: id, Err: err.Error(), Ms: ms})
					return
				}
				emit(response{ID: id, OK: true, Fit: res.Fit, Iters: res.Iters, Ms: ms})
			}(req.ID)
		default:
			emit(response{ID: req.ID, Err: fmt.Sprintf("unknown op %q (want mttkrp, cp or stats)", req.Op)})
		}
	}
	wg.Wait()
	srv.Close()
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stdin: %w", err)
	}
	st := srv.Stats()
	fmt.Fprintf(stderr, "mttkrp-serve: done — %d submitted, %d completed (%d failed), %d batches (%d coalesced), peak %d active / %d queued, max queue wait %.1f ms, %d aged reorders\n",
		st.Submitted, st.Completed, st.Failed, st.Batches, st.Coalesced, st.PeakActive, st.PeakQueued, st.MaxQueueWaitMs, st.Reordered)
	return nil
}

// runHTTP is the network front end: a transport listener over the same
// scheduler, serving until SIGINT/SIGTERM and then draining so admitted
// tickets finish. It prints the resolved listen address to stderr first —
// supervisors (and the e2e test) parse it to discover a :0 port.
func runHTTP(addr string, cfg repro.TransportConfig, stderr io.Writer) error {
	ts := repro.NewTransport(cfg)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	err = repro.ServeTransport(ts, l, func(a net.Addr) {
		fmt.Fprintf(stderr, "mttkrp-serve: listening on http://%s (%d workers)\n", a, ts.Workers())
	})
	st := ts.Stats()
	fmt.Fprintf(stderr, "mttkrp-serve: drained — %d requests (%d quota-rejected, %d shed, %d drain-rejected, %d bad, %d failed), %s in, %s out\n",
		st.Requests, st.QuotaRejected, st.ShedRejected, st.DrainRejected, st.BadRequests, st.Failed,
		cli.FormatBytes(st.BytesIn), cli.FormatBytes(st.BytesOut))
	return err
}

func matSum(m repro.Matrix) float64 {
	s := 0.0
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			s += m.At(i, j)
		}
	}
	return s
}
