package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// moduleDir returns the root directory of the repro module.
func moduleDir(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// buildTool compiles the vettool once per test binary.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mttkrp-lint")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/mttkrp-lint")
	cmd.Dir = moduleDir(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building mttkrp-lint: %v\n%s", err, out)
	}
	return bin
}

// TestHandshake pins the -V=full contract cmd/go parses before trusting a
// vettool: "<tool> version devel ... buildID=<id>".
func TestHandshake(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	re := regexp.MustCompile(`^mttkrp-lint version devel buildID=[0-9a-f]+\n$`)
	if !re.Match(out) {
		t.Fatalf("-V=full output %q does not match %s", out, re)
	}
}

// TestVettoolCleanTree is the acceptance gate: the full suite over the
// production tree through the real `go vet -vettool` protocol, exit 0.
func TestVettoolCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet over the whole module")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = moduleDir(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on the production tree reported findings: %v\n%s", err, out)
	}
}

// TestVettoolCatchesSeededViolation proves the gate gates: the
// deliberately broken package behind the lintfixture tag must fail the
// vet run with an arenaescape diagnostic.
func TestVettoolCatchesSeededViolation(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-tags", "lintfixture", "-vettool="+bin,
		"./internal/analysis/lintfixture")
	cmd.Dir = moduleDir(t)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed the seeded violation; the lint gate is not checking anything:\n%s", out)
	}
	if !bytes.Contains(out, []byte("mttkrp/arenaescape")) {
		t.Fatalf("seeded violation failed for the wrong reason:\n%s", out)
	}
	if !bytes.Contains(out, []byte("leakedBuffer")) {
		t.Fatalf("diagnostic does not name the leaked global:\n%s", out)
	}
}

// TestStandaloneMode covers the `go run ./cmd/mttkrp-lint ./...` path.
func TestStandaloneMode(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command(bin, "./internal/parallel", "./internal/krp")
	cmd.Dir = moduleDir(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("standalone run reported findings: %v\n%s", err, out)
	}
	// And the standalone path must also see the seeded violation.
	cmd = exec.Command(bin, "./internal/analysis/lintfixture")
	cmd.Dir = moduleDir(t)
	cmd.Env = append(os.Environ(), "GOFLAGS=-tags=lintfixture")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("standalone run passed the seeded violation:\n%s", out)
	}
	if !bytes.Contains(out, []byte("mttkrp/arenaescape")) {
		t.Fatalf("standalone seeded violation failed for the wrong reason:\n%s", out)
	}
}
