// mttkrp-lint machine-checks the runtime's concurrency and memory
// invariants (DESIGN.md §11): arena lifetimes, the t=0 width-resolution
// rule, phase-notification safe-points, non-blocking region bodies, and
// the //mttkrp:noalloc steady-state contract.
//
// Two ways to run it:
//
//	go run ./cmd/mttkrp-lint ./...          # standalone, exit 1 on findings
//	go vet -vettool=$(which mttkrp-lint) ./...  # unit-checker protocol
//
// In vettool mode the binary implements cmd/go's vet-tool contract: it
// answers the -V=full handshake with a content ID derived from its own
// executable (so `go vet` can cache per-package results), fast-paths the
// dependency passes cmd/go schedules (vet.cfg with VetxOnly), and reports
// diagnostics by printing them and exiting nonzero.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis/driver"
	"repro/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mttkrp-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	vFlag := fs.String("V", "", "print version and exit (cmd/go vet-tool handshake; use -V=full)")
	flagsFlag := fs.Bool("flags", false, "print the tool's analyzer flags as JSON and exit (cmd/go vet-tool handshake)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: mttkrp-lint [packages]  |  mttkrp-lint <vet.cfg>  |  go vet -vettool=mttkrp-lint [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *vFlag != "" {
		return printVersion(stdout, stderr)
	}
	if *flagsFlag {
		// cmd/go queries `tool -flags` for a JSON description of the
		// tool's own flags so it can forward matching command-line
		// arguments. The suite is deliberately knobless: every analyzer
		// always runs, so the answer is the empty list.
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return driver.Vet(stderr, suite.All(), rest[0])
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return driver.Standalone(stderr, suite.All(), rest)
}

// printVersion answers the -V=full handshake. cmd/go requires the form
// "<tool> version devel ... buildID=<id>" and uses the id to key its vet
// result cache, so the id must change whenever the tool's behavior could:
// hashing the executable itself gives exactly that.
func printVersion(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "mttkrp-lint: %v\n", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(stderr, "mttkrp-lint: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(stderr, "mttkrp-lint: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "mttkrp-lint version devel buildID=%x\n", h.Sum(nil)[:16])
	return 0
}
