package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmallRandomTensor(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-dims", "8,7,6", "-rank", "2", "-maxiters", "3", "-tol", "-1", "-threads", "2", "-seed", "4"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"tensor [8 7 6]", "converged: fit", "component weights"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunMultiSweepAndMethods(t *testing.T) {
	for _, extra := range [][]string{
		{"-multisweep"},
		{"-method", "reorder"},
		{"-method", "1step"},
		{"-nonneg"},
	} {
		args := append([]string{"-dims", "6,5,4", "-rank", "2", "-maxiters", "2", "-tol", "-1", "-threads", "2"}, extra...)
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err != nil {
			t.Errorf("run %v: %v", extra, err)
		}
	}
}

func TestRunSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tns")
	var out, errOut bytes.Buffer
	if err := run([]string{"-dims", "5,4,3", "-rank", "2", "-maxiters", "1", "-tol", "-1", "-save", path}, &out, &errOut); err != nil {
		t.Fatalf("save run: %v", err)
	}
	out.Reset()
	if err := run([]string{"-load", path, "-rank", "2", "-maxiters", "1", "-tol", "-1"}, &out, &errOut); err != nil {
		t.Fatalf("load run: %v", err)
	}
	if !strings.Contains(out.String(), "tensor [5 4 3]") {
		t.Errorf("loaded tensor not reported:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                                   // neither -dims nor -fmri
		{"-dims", "abc"},                     // malformed dims
		{"-dims", "4,4", "-method", "bogus"}, // unknown method
		{"-load", "/nonexistent/path.tns"},
	} {
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
