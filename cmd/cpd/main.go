// Command cpd runs a CP-ALS decomposition on a synthetic tensor — either a
// random dense tensor of given dimensions or the synthetic fMRI dataset —
// and reports fit, per-iteration time, and component weights.
//
// Usage:
//
//	cpd -dims 60,50,40 -rank 8
//	cpd -fmri -fmri-scale 0.3 -rank 10 -threads 4
//	cpd -fmri -linearize -rank 10          # 3-way pairs form
//	cpd -dims 40,40,40 -method reorder     # force the baseline MTTKRP
//	cpd -dims 40,40,40 -multisweep         # cross-mode MTTKRP reuse
//	cpd -fmri -nonneg -nvecs -corcondia    # nonnegative fit + diagnostics
//	cpd -fmri -save x.tns; cpd -load x.tns # persist / reload tensors
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/cpd"
	"repro/internal/fmri"
	"repro/internal/tensor"
)

func main() {
	cli.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command with explicit arguments and output streams so
// tests can drive it end to end.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cpd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dimsFlag := fs.String("dims", "", "comma-separated tensor dimensions, e.g. 60,50,40")
	useFMRI := fs.Bool("fmri", false, "use the synthetic fMRI dataset instead of a random tensor")
	fmriScale := fs.Float64("fmri-scale", 0.25, "linear scale of the fMRI dimensions vs the paper's 225x59x200x200")
	linearize := fs.Bool("linearize", false, "with -fmri: decompose the symmetry-reduced 3-way tensor")
	rank := fs.Int("rank", 10, "CP rank (number of components)")
	iters := fs.Int("maxiters", 50, "maximum ALS sweeps")
	tol := fs.Float64("tol", 1e-4, "fit-change stopping tolerance (negative: always run maxiters)")
	threads := fs.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 1, "random seed for data and initial guess")
	methodName := fs.String("method", "auto", "MTTKRP method: auto, 1step, 2step, reorder")
	noise := fs.Float64("noise", 0.1, "with -fmri: relative noise level")
	multiSweep := fs.Bool("multisweep", false, "share partial MTTKRPs across modes (2 tensor passes per sweep)")
	nonneg := fs.Bool("nonneg", false, "nonnegative CP via HALS (requires a nonnegative tensor)")
	nvecs := fs.Bool("nvecs", false, "initialize from leading eigenvectors instead of a random draw")
	corcondia := fs.Bool("corcondia", false, "report the core consistency diagnostic of the fit")
	loadPath := fs.String("load", "", "load the tensor from a file written by -save instead of generating one")
	savePath := fs.String("save", "", "save the generated tensor to this file before decomposing")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return cli.UsageError{} // the FlagSet already printed message and usage
	}

	method, err := cli.ParseMethod(*methodName)
	if err != nil {
		return cli.UsageError{Msg: err.Error()}
	}

	var x *tensor.Dense
	switch {
	case *loadPath != "":
		if x, err = tensor.Load(*loadPath); err != nil {
			return fmt.Errorf("load: %w", err)
		}
	case *useFMRI:
		p := fmri.PaperParams().Scaled(*fmriScale)
		p.Noise = *noise
		p.Seed = *seed
		fmt.Fprintf(stdout, "generating fMRI dataset %dx%dx%dx%d (%d planted networks, noise %.2g)...\n",
			p.Times, p.Subjects, p.Regions, p.Regions, p.Components, p.Noise)
		ds := fmri.Generate(p)
		if *linearize {
			x = ds.Linearize3()
		} else {
			x = ds.Tensor4
		}
	case *dimsFlag != "":
		dims, err := cli.ParseDims(*dimsFlag)
		if err != nil {
			return cli.UsageError{Msg: err.Error()}
		}
		x = tensor.Random(rand.New(rand.NewSource(*seed)), dims...)
	default:
		return cli.UsageError{Msg: "need -dims or -fmri; see -h"}
	}

	if *savePath != "" {
		if err := x.Save(*savePath); err != nil {
			return fmt.Errorf("save: %w", err)
		}
		fmt.Fprintf(stdout, "saved tensor to %s\n", *savePath)
	}

	fmt.Fprintf(stdout, "tensor %v (%d entries, %.1f MB), rank %d, method %v\n",
		x.Dims(), x.Size(), float64(x.Size())*8/1e6, *rank, method)

	cfg := cpd.Config{
		Rank:       *rank,
		MaxIters:   *iters,
		Tol:        *tol,
		Threads:    *threads,
		Method:     method,
		Seed:       *seed,
		MultiSweep: *multiSweep,
	}
	if *nvecs {
		cfg.Init = cpd.NVecsInit(*threads, x, *rank, *seed)
		fmt.Fprintln(stdout, "using nvecs (leading-eigenvector) initialization")
	}
	start := time.Now()
	var res *cpd.Result
	if *nonneg {
		res, err = cpd.NNALS(x, cfg)
	} else {
		res, err = cpd.ALS(x, cfg)
	}
	if err != nil {
		return fmt.Errorf("cp-als: %w", err)
	}
	elapsed := time.Since(start)

	fmt.Fprintf(stdout, "converged: fit %.6f after %d sweeps in %v (%.3fs/sweep)\n",
		res.Fit, res.Iters, elapsed.Round(time.Millisecond), res.MeanIterTime().Seconds())
	res.K.Arrange()
	fmt.Fprintln(stdout, "component weights (descending):")
	for i, l := range res.K.Lambda {
		fmt.Fprintf(stdout, "  λ[%d] = %.4g\n", i, l)
	}
	if len(res.FitHistory) > 1 {
		fmt.Fprintf(stdout, "fit history: first %.4f, last %.4f\n", res.FitHistory[0], res.Fit)
	}
	if *corcondia {
		cc := cpd.Corcondia(*threads, x, res.K)
		fmt.Fprintf(stdout, "core consistency (CORCONDIA): %.1f\n", cc)
	}
	return nil
}
