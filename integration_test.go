package repro_test

import (
	"math"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/cpd"
	"repro/internal/fmri"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// TestEndToEndNeuroimagingPipeline walks the paper's full application
// path: generate the correlation tensor, reduce it by symmetry, decompose
// with the hybrid MTTKRP (plain and multi-sweep), verify the planted
// structure is found, check the diagnostic, and round-trip through the
// on-disk format.
func TestEndToEndNeuroimagingPipeline(t *testing.T) {
	p := fmri.Params{Times: 16, Subjects: 6, Regions: 12, Components: 3, Noise: 0.02, Seed: 9}
	ds := fmri.Generate(p)
	x3 := ds.Linearize3()

	// Persist and reload; the decomposition must see identical data.
	path := filepath.Join(t.TempDir(), "fmri3.tns")
	if err := x3.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := tensor.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(x3, loaded) != 0 {
		t.Fatal("save/load changed the tensor")
	}

	// Decompose at the planted rank, both sweep modes.
	plain, err := cpd.ALS(loaded, cpd.Config{Rank: 3, MaxIters: 120, Tol: 1e-10, Seed: 4, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := cpd.ALS(loaded, cpd.Config{Rank: 3, MaxIters: 120, Tol: 1e-10, Seed: 4, Threads: 2, MultiSweep: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fit < 0.9 || multi.Fit < 0.9 {
		t.Fatalf("fits too low: plain %v multi %v", plain.Fit, multi.Fit)
	}
	if math.Abs(plain.Fit-multi.Fit) > 1e-3 {
		t.Errorf("sweep modes diverged: %v vs %v", plain.Fit, multi.Fit)
	}

	// The model should be structurally valid at the planted rank.
	if cc := cpd.Corcondia(2, loaded, plain.K); cc < 50 {
		t.Errorf("corcondia %v at the planted rank", cc)
	}

	// All MTTKRP methods agree on this real(istic) tensor.
	factors := plain.K.Factors
	for n := 0; n < loaded.Order(); n++ {
		ref := core.Compute(core.MethodNaive, loaded, factors, n, core.Options{})
		for _, m := range core.Methods() {
			got := core.Compute(m, loaded, factors, n, core.Options{Threads: 2})
			for i := 0; i < ref.R; i++ {
				for j := 0; j < ref.C; j++ {
					d := math.Abs(got.At(i, j) - ref.At(i, j))
					if d > 1e-8*(1+math.Abs(ref.At(i, j))) {
						t.Fatalf("method %v mode %d disagrees at (%d,%d)", m, n, i, j)
					}
				}
			}
		}
	}

	// Tucker compression of the 4-way tensor reaches the noise floor.
	tk, err := tucker.Decompose(ds.Tensor4, tucker.Config{Ranks: []int{4, 4, 4, 4}, MaxIters: 6, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Fit < 0.95 {
		t.Errorf("tucker fit %v", tk.Fit)
	}
}

// TestEndToEndFacadeWorkflow exercises the public API the way the README
// quick start does, including the KRP identity that defines MTTKRP.
func TestEndToEndFacadeWorkflow(t *testing.T) {
	x := repro.NewTensor(6, 5, 4)
	for i, d := range x.Data() {
		_ = d
		x.Data()[i] = float64(i%17) / 17
	}
	factors := []repro.Matrix{
		repro.NewMatrix(6, 2), repro.NewMatrix(5, 2), repro.NewMatrix(4, 2),
	}
	for _, f := range factors {
		for i := 0; i < f.R; i++ {
			for j := 0; j < f.C; j++ {
				f.Set(i, j, float64(i+j+1)/float64(f.R))
			}
		}
	}
	// MTTKRP against its definition via the explicit KRP: M = X_(1)·K.
	m := repro.MTTKRP(x, factors, 1, repro.MTTKRPOptions{Threads: 2})
	k := repro.KhatriRao(1, factors[2], factors[0])
	want := repro.NewMatrix(5, 2)
	// X_(1) entry (i1, i0 + i2·6): accumulate directly.
	for i0 := 0; i0 < 6; i0++ {
		for i1 := 0; i1 < 5; i1++ {
			for i2 := 0; i2 < 4; i2++ {
				v := x.At(i0, i1, i2)
				for c := 0; c < 2; c++ {
					want.Add(i1, c, v*k.At(i0+i2*6, c))
				}
			}
		}
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(m.At(i, j)-want.At(i, j)) > 1e-10 {
				t.Fatalf("MTTKRP != X_(n)·KRP at (%d,%d)", i, j)
			}
		}
	}
}
