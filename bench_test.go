// Benchmark families, one per figure of the paper's evaluation, plus the
// ablation benches called out in DESIGN.md. Problem sizes here are small
// enough for `go test -bench=.` on a laptop; use cmd/mttkrp-bench for the
// full thread-sweep tables and -paper for paper-sized runs.
package repro_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/cpd"
	"repro/internal/fmri"
	"repro/internal/krp"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/stream"
	"repro/internal/tensor"
	"repro/internal/ttm"
	"repro/internal/tucker"
)

var benchThreads = runtime.GOMAXPROCS(0)

// ---------------------------------------------------------------------
// Figure 4: Khatri-Rao product — Reuse (Alg. 1) vs Naive vs STREAM.
// ---------------------------------------------------------------------

func BenchmarkFig4KRP(b *testing.B) {
	const c = 25
	const j = 1 << 20 // ~1M output rows
	for _, z := range []int{2, 3, 4} {
		per := int(math.Round(math.Pow(float64(j), 1/float64(z))))
		rng := rand.New(rand.NewSource(int64(z)))
		mats := make([]mat.View, z)
		rows := 1
		for i := range mats {
			mats[i] = mat.RandomDense(per, c, rng)
			rows *= per
		}
		out := mat.NewDense(rows, c)
		b.Run(fmt.Sprintf("Z=%d/reuse", z), func(b *testing.B) {
			b.SetBytes(int64(rows) * c * 8)
			for i := 0; i < b.N; i++ {
				krp.Parallel(benchThreads, mats, out)
			}
		})
		b.Run(fmt.Sprintf("Z=%d/naive", z), func(b *testing.B) {
			b.SetBytes(int64(rows) * c * 8)
			for i := 0; i < b.N; i++ {
				krp.NaiveParallel(benchThreads, mats, out)
			}
		})
	}
	sb := stream.New(j * c)
	b.Run("STREAM", func(b *testing.B) {
		b.SetBytes(sb.Bytes())
		for i := 0; i < b.N; i++ {
			sb.Run(benchThreads)
		}
	})
}

// ---------------------------------------------------------------------
// Figure 5: MTTKRP time across methods, modes and orders.
// ---------------------------------------------------------------------

func fig5Problem(order, c int) (*tensor.Dense, []mat.View) {
	total := 2e6 // entries
	d := int(math.Round(math.Pow(total, 1/float64(order))))
	dims := make([]int, order)
	for i := range dims {
		dims[i] = d
	}
	rng := rand.New(rand.NewSource(int64(order)))
	x := tensor.Random(rng, dims...)
	u := make([]mat.View, order)
	for k, dd := range dims {
		u[k] = mat.RandomDense(dd, c, rng)
	}
	return x, u
}

func BenchmarkFig5MTTKRP(b *testing.B) {
	const c = 25
	for _, order := range []int{3, 4, 5, 6} {
		x, u := fig5Problem(order, c)
		for n := 0; n < order; n++ {
			b.Run(fmt.Sprintf("N=%d/n=%d/1-step", order, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.OneStep(x, u, n, core.Options{Threads: benchThreads})
				}
			})
			if n > 0 && n < order-1 {
				b.Run(fmt.Sprintf("N=%d/n=%d/2-step", order, n), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						core.TwoStep(x, u, n, core.Options{Threads: benchThreads})
					}
				})
			}
		}
		g := core.NewGemmBaselineFor(x, 0, c)
		b.Run(fmt.Sprintf("N=%d/baseline", order), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.Run(benchThreads, nil)
			}
		})
	}
}

// ---------------------------------------------------------------------
// Pool runtime: persistent workers + reusable workspaces vs the
// spawn-per-call baseline, on the Figure 4/5 shapes.
// ---------------------------------------------------------------------

// benchPoolThreads is the worker count for the runtime-comparison
// benchmarks: at least 4, so the dispatch machinery is exercised even on
// single-core runners (measuring dispatch overhead under oversubscription
// is still meaningful; the kernels' correctness does not depend on cores).
var benchPoolThreads = max(benchThreads, 4)

// BenchmarkMTTKRPRuntime compares the persistent pool runtime against
// spawn-per-call goroutine dispatch for whole MTTKRP calls. The pooled
// series uses the steady-state entry point (retained dst + pool) and must
// report 0 allocs/op; the spawn series allocates per region and per call.
func BenchmarkMTTKRPRuntime(b *testing.B) {
	const c = 25
	for _, order := range []int{3, 4, 5} {
		x, u := fig5Problem(order, c)
		modes := []int{0, order / 2} // one external, one internal mode
		for _, n := range modes {
			for _, rt := range []string{"pooled", "spawn"} {
				b.Run(fmt.Sprintf("N=%d/n=%d/%s", order, n, rt), func(b *testing.B) {
					var pool *parallel.Pool
					if rt == "pooled" {
						pool = parallel.NewPool(benchPoolThreads)
						defer pool.Close()
					} else {
						pool = parallel.NewSpawnPool()
					}
					dst := mat.NewDense(x.Dim(n), c)
					opts := core.Options{Threads: benchPoolThreads, Pool: pool}
					core.ComputeInto(dst, core.MethodAuto, x, u, n, opts) // warm the workspaces
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						core.ComputeInto(dst, core.MethodAuto, x, u, n, opts)
					}
				})
			}
		}
	}
}

// BenchmarkMTTKRPAllocVsInto quantifies what the allocating convenience
// API costs relative to the zero-alloc steady-state entry point.
func BenchmarkMTTKRPAllocVsInto(b *testing.B) {
	const c = 25
	x, u := fig5Problem(4, c)
	pool := parallel.NewPool(benchThreads)
	defer pool.Close()
	opts := core.Options{Threads: benchThreads, Pool: pool}
	b.Run("compute-alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.Compute(core.MethodAuto, x, u, 0, opts)
		}
	})
	b.Run("compute-into", func(b *testing.B) {
		dst := mat.NewDense(x.Dim(0), c)
		core.ComputeInto(dst, core.MethodAuto, x, u, 0, opts)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.ComputeInto(dst, core.MethodAuto, x, u, 0, opts)
		}
	})
}

// BenchmarkMTTKRPKRPRuntime is the Figure 4 KRP kernel on both runtimes:
// the paper's reuse algorithm streaming ~1M output rows, dispatched on the
// persistent pool vs freshly spawned goroutines.
func BenchmarkMTTKRPKRPRuntime(b *testing.B) {
	const c = 25
	const j = 1 << 20
	for _, z := range []int{2, 3, 4} {
		per := int(math.Round(math.Pow(float64(j), 1/float64(z))))
		rng := rand.New(rand.NewSource(int64(z)))
		mats := make([]mat.View, z)
		rows := 1
		for i := range mats {
			mats[i] = mat.RandomDense(per, c, rng)
			rows *= per
		}
		out := mat.NewDense(rows, c)
		for _, rt := range []string{"pooled", "spawn"} {
			b.Run(fmt.Sprintf("Z=%d/%s", z, rt), func(b *testing.B) {
				var pool *parallel.Pool
				if rt == "pooled" {
					pool = parallel.NewPool(benchPoolThreads)
					defer pool.Close()
				} else {
					pool = parallel.NewSpawnPool()
				}
				ws := pool.Acquire()
				defer ws.Release()
				krp.ParallelOn(pool, ws, benchPoolThreads, mats, out)
				b.ReportAllocs()
				b.SetBytes(int64(rows) * c * 8)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					krp.ParallelOn(pool, ws, benchPoolThreads, mats, out)
				}
			})
		}
	}
}

// ---------------------------------------------------------------------
// Figure 6: breakdown instrumentation (the breakdown adds timers inside
// the kernels; this measures the instrumented path the figure uses).
// ---------------------------------------------------------------------

func BenchmarkFig6Breakdown(b *testing.B) {
	const c = 25
	x, u := fig5Problem(4, c)
	for _, tc := range []struct {
		name string
		run  func(bd *core.Breakdown)
	}{
		{"1-step/external", func(bd *core.Breakdown) {
			core.OneStep(x, u, 0, core.Options{Threads: benchThreads, Breakdown: bd})
		}},
		{"1-step/internal", func(bd *core.Breakdown) {
			core.OneStep(x, u, 1, core.Options{Threads: benchThreads, Breakdown: bd})
		}},
		{"2-step/internal", func(bd *core.Breakdown) {
			core.TwoStep(x, u, 2, core.Options{Threads: benchThreads, Breakdown: bd})
		}},
		{"reorder", func(bd *core.Breakdown) {
			core.Reorder(x, u, 1, core.Options{Threads: benchThreads, Breakdown: bd})
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var bd core.Breakdown
			for i := 0; i < b.N; i++ {
				tc.run(&bd)
			}
		})
	}
}

// ---------------------------------------------------------------------
// Figure 7: CP-ALS per-iteration time, ours vs the TTB substitute.
// ---------------------------------------------------------------------

func BenchmarkFig7CPALS(b *testing.B) {
	p := fmri.PaperParams().Scaled(0.12)
	p.Seed = 99
	ds := fmri.Generate(p)
	tensors := []struct {
		name string
		x    *tensor.Dense
	}{{"3D", ds.Linearize3()}, {"4D", ds.Tensor4}}
	for _, tc := range tensors {
		for _, c := range []int{10, 25} {
			b.Run(fmt.Sprintf("%s/C=%d/ours", tc.name, c), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := cpd.ALS(tc.x, cpd.Config{Rank: c, MaxIters: 1, Tol: -1, Seed: 7, Threads: benchThreads})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/C=%d/ttb", tc.name, c), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := cpd.ReferenceALS(tc.x, cpd.Config{Rank: c, MaxIters: 1, Tol: -1, Seed: 7, Threads: benchThreads})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------
// Figure 8: MTTKRP on the application (fMRI-shaped) tensors.
// ---------------------------------------------------------------------

func BenchmarkFig8FMRI(b *testing.B) {
	const c = 25
	p := fmri.PaperParams().Scaled(0.12)
	p.Seed = 99
	ds := fmri.Generate(p)
	for _, tc := range []struct {
		name string
		x    *tensor.Dense
	}{{"3D", ds.Linearize3()}, {"4D", ds.Tensor4}} {
		rng := rand.New(rand.NewSource(5))
		u := make([]mat.View, tc.x.Order())
		for k := 0; k < tc.x.Order(); k++ {
			u[k] = mat.RandomDense(tc.x.Dim(k), c, rng)
		}
		for n := 0; n < tc.x.Order(); n++ {
			b.Run(fmt.Sprintf("%s/n=%d/1-step", tc.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.OneStep(tc.x, u, n, core.Options{Threads: benchThreads})
				}
			})
			if n > 0 && n < tc.x.Order()-1 {
				b.Run(fmt.Sprintf("%s/n=%d/2-step", tc.name, n), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						core.TwoStep(tc.x, u, n, core.Options{Threads: benchThreads})
					}
				})
			}
		}
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md Section 6).
// ---------------------------------------------------------------------

// BenchmarkAblationGemmShapes shows why the baseline scales poorly: a
// square GEMM parallelizes over rows, an inner-product-shaped GEMM (tiny
// output, huge K) cannot without K-splitting, which this GEMM — like MKL
// in the paper's analysis — does not do.
func BenchmarkAblationGemmShapes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct {
		name    string
		m, k, n int
	}{
		{"square", 512, 512, 512},
		{"inner-product", 32, 2 << 16, 25},
		{"tall-output", 2 << 16, 32, 25},
	}
	for _, s := range shapes {
		a := mat.RandomDense(s.m, s.k, rng)
		bb := mat.RandomDense(s.k, s.n, rng)
		cc := mat.NewDense(s.m, s.n)
		for _, t := range []int{1, benchThreads} {
			b.Run(fmt.Sprintf("%s/T=%d", s.name, t), func(b *testing.B) {
				flops := 2 * int64(s.m) * int64(s.k) * int64(s.n)
				b.SetBytes(flops) // bytes column ≈ flops for GFLOPS reading
				for i := 0; i < b.N; i++ {
					blas.Gemm(t, 1, a, bb, 0, cc)
				}
			})
		}
	}
}

// BenchmarkAblationTwoStepOrder forces left-first vs right-first on a
// tensor where the selection rule prefers one; the rule should pick the
// faster ordering.
func BenchmarkAblationTwoStepOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	// Mode 1 of 8×64×64×8: I^L = 8 < I^R = 512, so right-first is chosen
	// (multi-TTV cost ∝ I^L). Mode 2: I^L = 512 > I^R = 8 → left-first.
	x := tensor.Random(rng, 8, 64, 64, 8)
	u := make([]mat.View, 4)
	for k := 0; k < 4; k++ {
		u[k] = mat.RandomDense(x.Dim(k), 25, rng)
	}
	for _, n := range []int{1, 2} {
		b.Run(fmt.Sprintf("n=%d/auto", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.TwoStep(x, u, n, core.Options{Threads: benchThreads})
			}
		})
		b.Run(fmt.Sprintf("n=%d/left", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.TwoStepLeftFirst(x, u, n, core.Options{Threads: benchThreads})
			}
		})
		b.Run(fmt.Sprintf("n=%d/right", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.TwoStepRightFirst(x, u, n, core.Options{Threads: benchThreads})
			}
		})
	}
}

// BenchmarkAblationBlockGrain compares static contiguous partitioning of
// the internal-mode 1-step block loop against dynamic chunking.
func BenchmarkAblationBlockGrain(b *testing.B) {
	x, u := fig5Problem(5, 25)
	n := 2
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.OneStep(x, u, n, core.Options{Threads: benchThreads})
		}
	})
	for _, grain := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("dynamic/grain=%d", grain), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.OneStep(x, u, n, core.Options{Threads: benchThreads, DynamicGrain: grain})
			}
		})
	}
}

// BenchmarkAblationGemmBlocking sweeps the GEMM cache-blocking parameters.
func BenchmarkAblationGemmBlocking(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := mat.RandomDense(768, 768, rng)
	bb := mat.RandomDense(768, 768, rng)
	cc := mat.NewDense(768, 768)
	for _, bl := range []blas.Blocking{
		{}, // defaults
		{MC: 32, KC: 64, NC: 512},
		{MC: 256, KC: 512, NC: 4096},
		{MC: 64, KC: 128, NC: 1024},
	} {
		name := "default"
		if bl.MC != 0 {
			name = fmt.Sprintf("MC=%d,KC=%d,NC=%d", bl.MC, bl.KC, bl.NC)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(2 * 768 * 768 * 768)
			for i := 0; i < b.N; i++ {
				blas.GemmBlocked(benchThreads, 1, a, bb, 0, cc, bl)
			}
		})
	}
}

// ---------------------------------------------------------------------
// Extension benches (DESIGN.md Section 6 extensions).
// ---------------------------------------------------------------------

// BenchmarkExtMultiSweep measures the cross-mode reuse scheme against
// per-mode MTTKRPs for one full ALS sweep (the paper predicts ~2x for 4-way
// tensors; the sweep does 2 tensor passes instead of N).
func BenchmarkExtMultiSweep(b *testing.B) {
	for _, order := range []int{3, 4, 5} {
		x, u := fig5Problem(order, 16)
		noop := func(int, mat.View) {}
		b.Run(fmt.Sprintf("N=%d/per-mode", order), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for n := 0; n < order; n++ {
					core.Compute(core.MethodAuto, x, u, n, core.Options{Threads: benchThreads})
				}
			}
		})
		b.Run(fmt.Sprintf("N=%d/sweep-all", order), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SweepAll(x, u, core.Options{Threads: benchThreads}, noop)
			}
		})
	}
}

// BenchmarkExtKRPChunking measures the memory-bounded external-mode
// 1-step: chunked KRP streaming vs full per-worker blocks.
func BenchmarkExtKRPChunking(b *testing.B) {
	x, u := fig5Problem(3, 25)
	for _, chunk := range []int{0, 256, 4096, 65536} {
		name := "full"
		if chunk > 0 {
			name = fmt.Sprintf("chunk=%d", chunk)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.OneStep(x, u, 0, core.Options{Threads: benchThreads, KRPChunkRows: chunk})
			}
		})
	}
}

// BenchmarkExtTTM measures the blocked no-reorder TTM per mode.
func BenchmarkExtTTM(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.Random(rng, 128, 128, 128)
	for n := 0; n < 3; n++ {
		m := mat.RandomDense(128, 16, rng)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ttm.Multiply(benchThreads, x, n, m)
			}
		})
	}
}

// BenchmarkExtTucker measures a full HOOI decomposition.
func BenchmarkExtTucker(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := tensor.Random(rng, 64, 64, 64)
	b.Run("HOOI-64cube-rank8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tucker.Decompose(x, tucker.Config{Ranks: []int{8, 8, 8}, MaxIters: 2, Tol: -1, Threads: benchThreads}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtNNALS measures the nonnegative HALS sweep cost relative to
// unconstrained ALS (should be close: both are MTTKRP-dominated).
func BenchmarkExtNNALS(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := tensor.Random(rng, 96, 64, 48)
	for _, tc := range []struct {
		name string
		run  func() error
	}{
		{"ALS", func() error {
			_, err := cpd.ALS(x, cpd.Config{Rank: 12, MaxIters: 1, Tol: -1, Threads: benchThreads})
			return err
		}},
		{"NNALS", func() error {
			_, err := cpd.NNALS(x, cpd.Config{Rank: 12, MaxIters: 1, Tol: -1, Threads: benchThreads})
			return err
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := tc.run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
