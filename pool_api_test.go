package repro_test

import (
	"math/rand"
	"testing"

	"repro"
)

// TestMTTKRPIntoOnPrivatePool exercises the public pool API end to end:
// a per-request pool, the steady-state MTTKRPInto entry point, and result
// agreement with the allocating API across methods and modes.
func TestMTTKRPIntoOnPrivatePool(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := repro.RandomTensor(rng, 12, 9, 10, 8)
	const c = 5
	factors := make([]repro.Matrix, x.Order())
	for k := range factors {
		factors[k] = repro.RandomMatrix(x.Dim(k), c, rng)
	}
	pool := repro.NewPool(3)
	defer pool.Close()

	for _, method := range []repro.Method{repro.MethodAuto, repro.MethodOneStep, repro.MethodTwoStep, repro.MethodReorder} {
		for n := 0; n < x.Order(); n++ {
			want := repro.MTTKRPWith(method, x, factors, n, repro.MTTKRPOptions{Threads: 2})
			dst := repro.NewMatrix(x.Dim(n), c)
			got := repro.MTTKRPInto(dst, method, x, factors, n, repro.MTTKRPOptions{Threads: 3, Pool: pool})
			if &got.Data[0] != &dst.Data[0] {
				t.Fatalf("method %v mode %d: MTTKRPInto did not write through dst", method, n)
			}
			for i := 0; i < want.R; i++ {
				for j := 0; j < want.C; j++ {
					diff := got.At(i, j) - want.At(i, j)
					if diff > 1e-10 || diff < -1e-10 {
						t.Fatalf("method %v mode %d: mismatch at (%d,%d): %g vs %g",
							method, n, i, j, got.At(i, j), want.At(i, j))
					}
				}
			}
		}
	}
}

// TestCPOnPrivatePool runs a small CP-ALS decomposition entirely on a
// dedicated pool (the per-request serving pattern).
func TestCPOnPrivatePool(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := repro.RandomTensor(rng, 14, 12, 10)
	pool := repro.NewPool(2)
	defer pool.Close()
	res, err := repro.CP(x, repro.CPConfig{Rank: 3, MaxIters: 4, Tol: -1, Threads: 2, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 4 {
		t.Fatalf("ran %d sweeps, want 4", res.Iters)
	}
	if res.Fit <= 0 || res.Fit > 1 {
		t.Fatalf("fit %v out of range", res.Fit)
	}
}
