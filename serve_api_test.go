package repro_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro"
)

// TestServerAPI exercises the public serving API end to end: concurrent
// same-shape MTTKRP submissions and a CP run through one Server, checked
// against the direct single-caller APIs.
func TestServerAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := repro.RandomTensor(rng, 12, 9, 10)
	const c = 4
	factors := make([]repro.Matrix, x.Order())
	for k := range factors {
		factors[k] = repro.RandomMatrix(x.Dim(k), c, rng)
	}
	want := repro.MTTKRP(x, factors, 1, repro.MTTKRPOptions{Threads: 2})

	srv := repro.NewServer(repro.ServerConfig{Workers: 4})
	defer srv.Close()

	const conc = 8
	var wg sync.WaitGroup
	errs := make([]error, conc)
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				got, err := srv.SubmitMTTKRP(repro.MTTKRPRequest{X: x, Factors: factors, Mode: 1}).MTTKRP()
				if err != nil {
					errs[i] = err
					return
				}
				for row := 0; row < want.R; row++ {
					for col := 0; col < want.C; col++ {
						d := got.At(row, col) - want.At(row, col)
						if d > 1e-10 || d < -1e-10 {
							t.Errorf("submitter %d: mismatch at (%d,%d)", i, row, col)
							return
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submitter %d: %v", i, err)
		}
	}

	res, err := srv.SubmitCP(repro.CPRequest{X: x, Config: repro.CPConfig{Rank: 3, MaxIters: 3, Tol: -1}}).CP()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 3 || res.Fit <= 0 || res.Fit > 1 {
		t.Fatalf("cp result %+v", res)
	}

	st := srv.Stats()
	if st.Submitted != conc*5+1 || st.Completed != st.Submitted || st.Failed != 0 {
		t.Fatalf("stats %+v", st)
	}
}
