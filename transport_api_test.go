package repro_test

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro"
)

// TestTransportPublicAPI exercises the exported network-serving surface:
// NewTransport + a live listener, NewClient round trips for MTTKRP and CP,
// stats, and a graceful Shutdown that flips submissions to ErrDraining
// underneath.
func TestTransportPublicAPI(t *testing.T) {
	ts := repro.NewTransport(repro.TransportConfig{
		Serve: repro.ServerConfig{Workers: 2},
		Quota: repro.QuotaConfig{RequestsPerSec: 1000, Burst: 100},
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- ts.Serve(l) }()

	c := repro.NewClient("http://" + l.Addr().String())
	c.APIKey = "api-test"
	if err := c.Healthy(); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	rng := rand.New(rand.NewSource(4))
	x := repro.RandomTensor(rng, 11, 9, 7)
	u := make([]repro.Matrix, x.Order())
	for k := range u {
		u[k] = repro.RandomMatrix(x.Dim(k), 5, rng)
	}
	got, tm, err := c.MTTKRP(repro.Matrix{}, x, u, 2, repro.MethodAuto)
	if err != nil {
		t.Fatalf("served MTTKRP: %v", err)
	}
	want := repro.MTTKRP(x, u, 2, repro.MTTKRPOptions{})
	for i := 0; i < want.R; i++ {
		for j := 0; j < want.C; j++ {
			if d := got.At(i, j) - want.At(i, j); d > 1e-12 || d < -1e-12 {
				t.Fatalf("served result diverges at (%d,%d)", i, j)
			}
		}
	}
	if tm.Compute <= 0 || tm.Total <= 0 {
		t.Fatalf("timing not reported: %+v", tm)
	}

	cp, _, err := c.CP(x, 3, 4, 11)
	if err != nil {
		t.Fatalf("served CP: %v", err)
	}
	if cp.Iters != 4 || len(cp.K.Factors) != x.Order() {
		t.Fatalf("served CP: %+v", cp)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests < 2 || st.Serve.Completed < 2 {
		t.Fatalf("stats %+v: requests unaccounted", st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ts.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve after shutdown: %v", err)
	}
	var te *repro.TransportError
	if err := c.Healthy(); err == nil {
		t.Fatal("healthz succeeded after shutdown")
	} else if errors.As(err, &te) && te.StatusCode != 503 {
		t.Fatalf("healthz after shutdown: %v", err)
	}
}
