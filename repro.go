// Package repro is a shared-memory parallel library for tensor MTTKRP
// (matricized-tensor times Khatri-Rao product) and CP decomposition,
// reproducing Hayashi, Ballard, Jiang & Tobia, "Shared-Memory
// Parallelization of MTTKRP for Dense Tensors" (PPoPP 2018), and
// extending its runtime to sparse (COO) tensors as a first-class
// workload.
//
// Two tensor layouts share one shape-generic API. Dense tensors are
// stored once in the natural generalized column-major linearization and
// never reordered — the MTTKRP kernels multiply strided views of that
// buffer directly. Sparse tensors hold sorted, deduplicated COO
// coordinates and run a compressed-fiber kernel that scales with the
// stored-entry count. Both implement AnyTensor, and MTTKRP/CP dispatch
// on the layout.
//
// Quick start:
//
//	x := repro.RandomTensor(rand.New(rand.NewSource(1)), 60, 50, 40)
//	res, err := repro.CP(x, repro.CPConfig{Rank: 8})
//	// res.K.Factors[n] is the I_n × 8 factor of mode n.
//
// The low-level kernels are available directly, for either layout:
//
//	m := repro.MTTKRP(x, factors, mode, repro.MTTKRPOptions{Threads: 8})
//	s := repro.RandomSparseTensor(rng, 0.01, 500, 400, 300)
//	m = repro.MTTKRP(s, factors, mode, repro.MTTKRPOptions{Threads: 8})
//
// See DESIGN.md for the algorithm inventory (§13 for the sparse layout
// and wire format) and EXPERIMENTS.md for the reproduction of the
// paper's figures.
package repro

import (
	"math/rand"
	"net"

	"repro/internal/core"
	"repro/internal/cpd"
	"repro/internal/krp"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/transport"
	"repro/internal/ttm"
	"repro/internal/tucker"
)

// AnyTensor is the shape-generic tensor: *Dense or *Sparse. Every
// layout-dispatching entry point (MTTKRP, CP, a Server submission) takes
// one; the concrete constructors below return the concrete types, so
// layout-specific methods stay available without assertions.
type AnyTensor = tensor.Interface

// Dense is a dense N-way tensor in natural (generalized column-major)
// layout. See the methods of tensor.Dense for accessors, matricization
// views and utilities.
type Dense = tensor.Dense

// Sparse is a sparse N-way tensor in sorted, deduplicated COO form with
// cached per-mode compressed fiber layouts. See the methods of
// tensor.Sparse for accessors and conversion.
type Sparse = tensor.Sparse

// Layout identifies a tensor's storage layout (LayoutDense, LayoutCOO).
type Layout = tensor.Layout

// Tensor layouts.
const (
	LayoutDense = tensor.LayoutDense
	LayoutCOO   = tensor.LayoutCOO
)

// Tensor is the historical name of the dense tensor type.
//
// Deprecated: use Dense. Tensor predates sparse support, when the dense
// layout was the only one; it remains as an alias so existing callers
// compile unchanged.
type Tensor = tensor.Dense

// Matrix is a strided dense matrix view; factor matrices are row-major
// Matrix values.
type Matrix = mat.View

// KTensor is a rank-C Kruskal tensor (weights + factor matrices).
type KTensor = cpd.KTensor

// Method selects an MTTKRP algorithm.
type Method = core.Method

// MTTKRP algorithm choices.
const (
	// MethodAuto uses the paper's hybrid: 1-step for external modes,
	// 2-step for internal modes (the default).
	MethodAuto = core.MethodAuto
	// MethodOneStep is the paper's 1-step algorithm (Algorithm 3).
	MethodOneStep = core.MethodOneStep
	// MethodTwoStep is Phan et al.'s 2-step algorithm (Algorithm 4).
	MethodTwoStep = core.MethodTwoStep
	// MethodReorder is the explicit-reorder Bader–Kolda baseline.
	MethodReorder = core.MethodReorder
)

// MTTKRPOptions configures an MTTKRP call.
type MTTKRPOptions = core.Options

// Breakdown collects per-phase MTTKRP timings.
type Breakdown = core.Breakdown

// CPConfig configures a CP-ALS run.
type CPConfig = cpd.Config

// CPResult reports a CP-ALS run.
type CPResult = cpd.Result

// NewTensor allocates a zero dense tensor with the given (positive)
// dimensions.
func NewTensor(dims ...int) *Dense { return tensor.New(dims...) }

// TensorFromData wraps an existing natural-layout buffer without copying.
func TensorFromData(data []float64, dims ...int) *Dense {
	return tensor.FromData(data, dims...)
}

// RandomTensor returns a dense tensor with uniform [0, 1) entries.
func RandomTensor(rng *rand.Rand, dims ...int) *Dense {
	return tensor.Random(rng, dims...)
}

// NewSparseTensor builds a sparse tensor from COO triples: idx[k][p] is
// entry p's coordinate along mode k, vals[p] its value. The slices are
// taken over (not copied); entries are sorted lexicographically and
// duplicate coordinates are summed. Out-of-range coordinates and
// mismatched lengths return an error.
func NewSparseTensor(dims []int, idx [][]int32, vals []float64) (*Sparse, error) {
	return tensor.SparseFromCOO(dims, idx, vals)
}

// RandomSparseTensor returns a sparse tensor with round(density · Π dims)
// distinct uniformly-placed entries (at least one), values uniform in
// [0, 1).
func RandomSparseTensor(rng *rand.Rand, density float64, dims ...int) *Sparse {
	return tensor.RandomSparse(rng, density, dims...)
}

// NewMatrix allocates a rows × cols row-major matrix.
func NewMatrix(rows, cols int) Matrix { return mat.NewDense(rows, cols) }

// RandomMatrix returns a rows × cols row-major matrix with uniform [0, 1)
// entries.
func RandomMatrix(rows, cols int, rng *rand.Rand) Matrix {
	return mat.RandomDense(rows, cols, rng)
}

// Pool is a persistent fork-join worker team with reusable per-worker
// workspaces — the runtime all kernels execute on. The zero value of
// MTTKRPOptions/CPConfig uses a shared process-wide pool; create one Pool
// per concurrent request (and Close it when done) to isolate workloads —
// or, for many concurrent requests, use a Server, which shares one pool
// across all of them under an admission policy.
type Pool = parallel.Pool

// NewPool creates a pool with the given number of persistent workers
// (0 = GOMAXPROCS). Close it when no longer needed.
func NewPool(workers int) *Pool { return parallel.NewPool(workers) }

// Topology describes the host's placement domains (NUMA nodes and their
// CPUs). Hand one to ServerConfig.Topology to make the server's pool,
// lease placement, first-touch buffers and budget split domain-aware;
// results stay bit-identical with placement on or off.
type Topology = parallel.Topology

// DetectTopology discovers the host topology: the MTTKRP_TOPOLOGY
// environment override if set, else Linux sysfs, else a single domain
// spanning all CPUs (on which placement is a no-op). It never fails.
func DetectTopology() *Topology { return parallel.DetectTopology() }

// ParseTopology builds a Topology from a spec string of per-domain CPU
// lists in kernel cpulist syntax, domains separated by ';' — for example
// "0-3;4-7" for two 4-CPU domains.
func ParseTopology(spec string) (*Topology, error) { return parallel.ParseTopology(spec) }

// Server is the concurrent serving runtime: an admission-controlled
// scheduler that shares one worker pool across concurrent MTTKRP and CP
// requests — worker budgets weighted by each request's cost share under a
// CostModel (floored at MinWorkers, capped at MaxShare), an aging
// admission queue so small requests are not convoyed behind large ones,
// and rebalancing as requests arrive and finish with changes applied at
// running requests' kernel phase boundaries — and coalesces same-shape
// MTTKRP requests into batches on shared warmed workspaces. Submit with
// SubmitMTTKRP/SubmitCP; results arrive through Tickets. Close when done.
type Server = serve.Server

// ServerConfig sizes a Server (worker count, per-request floor, admission
// cap, batching) and selects its admission policy: cost-aware budgets with
// an aging queue by default (CostModel, MaxShare, AgeBias knobs), or the
// even-split FIFO baseline via EvenSplit.
type ServerConfig = serve.Config

// CostModel estimates a request's admission cost from its problem shape
// (flops ≈ Π dims × rank per mode, bytes ≈ tensor + factor footprint); the
// scheduler weights worker budgets by cost share and ages the admission
// queue with it.
type CostModel = serve.CostModel

// ServerStats is a snapshot of a Server's scheduler counters, including
// queue depth, oldest-queued age, aging reorders, and the per-request
// grant table (RequestStat entries with granted budgets and queue ages).
type ServerStats = serve.Stats

// RequestStat describes one active or queued request in a ServerStats
// snapshot: kind, cost, granted worker budget (0 while queued) and queue
// age.
type RequestStat = serve.RequestStat

// Ticket is the async completion handle of a submitted request.
type Ticket = serve.Ticket

// MTTKRPRequest describes one MTTKRP submission to a Server.
type MTTKRPRequest = serve.MTTKRPRequest

// CPRequest describes one CP-ALS submission to a Server.
type CPRequest = serve.CPRequest

// NewServer creates a serving runtime with its own worker pool.
func NewServer(cfg ServerConfig) *Server { return serve.New(cfg) }

// ErrDraining reports a submission refused because a Server (or the
// transport in front of it) has begun a graceful drain.
var ErrDraining = serve.ErrDraining

// Transport is the network front end of a Server: an HTTP listener
// speaking a compact binary wire format for dense and sparse tensors
// (sparse requests ship COO coordinates and values at wire version 2),
// with per-client token-bucket quotas and graceful drain. Create with
// NewTransport; attach a listener with its Serve/ListenAndServe methods
// or ServeTransport.
type Transport = transport.Server

// TransportConfig sizes a Transport: the scheduler underneath, quotas,
// and payload ceilings.
type TransportConfig = transport.Config

// QuotaConfig bounds each client's request rate and in-flight payload
// bytes on a Transport (clients are keyed by the X-API-Key header).
type QuotaConfig = transport.QuotaConfig

// TransportStats snapshots a Transport's counters (requests, rejections,
// bytes, decode/compute split) plus the scheduler's.
type TransportStats = transport.Stats

// Client speaks the binary wire protocol to a Transport listener.
type Client = transport.Client

// TransportError is a non-2xx response surfaced by a Client: quota
// rejections arrive as StatusCode 429, drains as 503.
type TransportError = transport.HTTPError

// TransportTiming is one round trip's cost split: server-side wire decode
// and kernel compute, plus the client-observed total.
type TransportTiming = transport.Timing

// NewTransport builds a network serving front end and its scheduler.
func NewTransport(cfg TransportConfig) *Transport { return transport.NewServer(cfg) }

// ListenAndServe runs a Transport on addr until SIGINT/SIGTERM, then
// drains gracefully (admitted tickets finish, new submissions see 503)
// and returns.
func ListenAndServe(addr string, cfg TransportConfig) error {
	return transport.ListenAndServe(addr, cfg)
}

// ServeTransport serves t on l until SIGINT/SIGTERM, then drains. notify,
// when non-nil, receives the resolved listen address before serving
// starts (how a daemon reports a :0 port).
func ServeTransport(t *Transport, l net.Listener, notify func(net.Addr)) error {
	return transport.ServeUntilSignal(t, l, notify)
}

// NewClient returns a Client for the Transport listener at baseURL
// (e.g. "http://127.0.0.1:8080").
func NewClient(baseURL string) *Client { return transport.NewClient(baseURL) }

// MTTKRP computes M = X_(n) · (U_{N-1} ⊙ ⋯ ⊙ U_{n+1} ⊙ U_{n-1} ⊙ ⋯ ⊙ U₀)
// for a tensor of either layout, returning the I_n × C row-major result.
// Factor k must be I_k × C row-major. Dense tensors run the method
// selected in opts (MethodAuto — the paper's hybrid — by default); sparse
// tensors run the compressed-fiber kernel.
func MTTKRP(x AnyTensor, factors []Matrix, n int, opts MTTKRPOptions) Matrix {
	return core.Run(core.Request{X: x, Factors: factors, Mode: n, Opts: opts})
}

// MTTKRPWith computes the MTTKRP with an explicit algorithm choice
// (meaningful for dense tensors; a sparse tensor has one kernel and
// ignores it, except MethodNaive, which runs the densified reference).
func MTTKRPWith(method Method, x AnyTensor, factors []Matrix, n int, opts MTTKRPOptions) Matrix {
	return core.Run(core.Request{X: x, Factors: factors, Mode: n, Method: method, Opts: opts})
}

// MTTKRPInto computes the MTTKRP into a caller-owned contiguous row-major
// I_n × C matrix and returns it. With a retained dst and opts.Pool set,
// repeated same-shape calls reuse the pool's workspaces and allocate
// nothing — the steady-state entry point for serving and ALS-style loops,
// for both layouts (a sparse tensor's fiber layout is built on the first
// call per mode and cached).
func MTTKRPInto(dst Matrix, method Method, x AnyTensor, factors []Matrix, n int, opts MTTKRPOptions) Matrix {
	return core.Run(core.Request{X: x, Factors: factors, Mode: n, Method: method, Dst: dst, Opts: opts})
}

// KhatriRao computes the Khatri-Rao product of the given matrices
// (row-major, equal column counts) into a fresh (∏ rows) × C matrix, using
// the paper's row-wise algorithm with partial-product reuse, parallelized
// over threads workers.
func KhatriRao(threads int, mats ...Matrix) Matrix {
	out := mat.NewDense(krp.NumRows(mats), mats[0].C)
	krp.Parallel(threads, mats, out)
	return out
}

// CP computes a rank-C CP decomposition of x (either layout) by
// alternating least squares, using the paper's hybrid MTTKRP for dense
// tensors (unless cfg.Method overrides it) and the compressed-fiber
// kernel for sparse ones. Set cfg.MultiSweep to share partial MTTKRP
// results across the modes of each sweep (dense only: two tensor passes
// per sweep instead of N, identical results).
func CP(x AnyTensor, cfg CPConfig) (*CPResult, error) {
	return cpd.ALSAny(x, cfg)
}

// TTM computes the tensor-times-matrix product Y = X ×n M (Y_(n) = Mᵀ·X_(n))
// without reordering tensor entries, using t workers.
func TTM(t int, x *Tensor, n int, m Matrix) *Tensor {
	return ttm.Multiply(t, x, n, m)
}

// Corcondia computes the core consistency diagnostic of a fitted CP model
// (100 = perfect CP structure; collapses when over-factored).
func Corcondia(t int, x *Tensor, k *KTensor) float64 {
	return cpd.Corcondia(t, x, k)
}

// NVecsInit builds a deterministic CP starting point from the leading
// eigenvectors of each mode's Gram matrix (Tensor Toolbox 'nvecs').
func NVecsInit(t int, x *Tensor, rank int, seed int64) *KTensor {
	return cpd.NVecsInit(t, x, rank, seed)
}

// MappedTensor is a file-backed dense tensor: its data slab is a read-only
// mapping of a mappable tensor file (see OpenDenseFile), valid until Close.
// The MTTKRP kernels stream a mapped tensor through bounded row tiles, so
// tensors far larger than RAM compute with bit-identical results.
type MappedTensor = tensor.Map

// DenseFileInfo is the identity of a mappable tensor file (shape, mtime,
// size, header checksum) as read by StatDenseFile — what a by-reference
// client ships instead of the payload.
type DenseFileInfo = tensor.DenseFileInfo

// WriteDenseFile writes d to path in the mappable on-disk format (page-
// aligned data section; see DESIGN.md §14); it round-trips through
// OpenDenseFile.
func WriteDenseFile(path string, d *Dense) error { return tensor.WriteDenseFile(path, d) }

// CreateDenseFile writes an all-zero mappable tensor of the given dims as
// a sparse file: the data section is truncated into existence without
// writing its pages, so out-of-core experiments can create tensors far
// larger than RAM (or disk) instantly.
func CreateDenseFile(path string, dims []int) error { return tensor.CreateDenseFile(path, dims) }

// OpenDenseFile maps a mappable tensor file read-only and returns the
// file-backed tensor. Close it when done.
func OpenDenseFile(path string) (*MappedTensor, error) { return tensor.OpenDense(path) }

// AutoTileRows returns the MTTKRPOptions.TileRows value that keeps a
// mode-n MTTKRP's resident tensor working set within budgetBytes
// (DefaultTileBytes when ≤ 0), or 0 — untiled — when the whole tensor
// already fits. Pair it with OpenDenseFile to stream tensors larger
// than RAM with bit-identical results.
func AutoTileRows(dims []int, n int, budgetBytes int64) int {
	return core.AutoTileRows(dims, n, budgetBytes)
}

// DefaultTileBytes is the tile byte budget AutoTileRows assumes when the
// caller does not pick one.
const DefaultTileBytes = core.DefaultTileBytes

// StatDenseFile reads a mappable tensor file's shape and identity without
// touching its data section — the cheap way to build a TensorRef.
func StatDenseFile(path string) (*DenseFileInfo, error) { return tensor.StatDense(path) }

// TensorRef names a server-resident tensor file for a by-reference MTTKRP
// request (Client.MTTKRPByRef): a path relative to the server's TensorRoot
// plus the file identity the client observed, which the server revalidates
// before computing (409 on drift).
type TensorRef = transport.TensorRef

// TensorRefFor builds the TensorRef a client ships for the file info
// describes, naming it path relative to the server's tensor root.
func TensorRefFor(info *DenseFileInfo, path string) TensorRef {
	return transport.RefFor(info, path)
}

// LoadTensor reads a tensor of either layout, sniffing the file format:
// the dense binary format written by (*Dense).Save, or text COO triples
// (one "coord... value" line per entry, 1-based coordinates — the
// FROSTT .tns convention) written by (*Sparse).Save. Malformed COO lines
// are reported with their line number.
func LoadTensor(path string) (AnyTensor, error) { return tensor.LoadAny(path) }

// LoadDenseTensor reads a dense tensor saved with (*Dense).Save.
func LoadDenseTensor(path string) (*Dense, error) { return tensor.Load(path) }

// LoadSparseTensor reads a sparse tensor from text COO triples (the
// format (*Sparse).Save writes; dimensions are the per-mode coordinate
// maxima).
func LoadSparseTensor(path string) (*Sparse, error) { return tensor.LoadSparse(path) }

// NonnegativeCP computes a nonnegative CP decomposition by HALS (the
// nonnegative setting of the paper's related work), using the same MTTKRP
// kernels as CP.
func NonnegativeCP(x *Tensor, cfg CPConfig) (*CPResult, error) {
	return cpd.NNALS(x, cfg)
}

// TuckerModel is a Tucker decomposition (core tensor + orthonormal
// factors).
type TuckerModel = tucker.Model

// TuckerConfig configures Tucker/HOOI.
type TuckerConfig = tucker.Config

// TuckerResult reports a Tucker decomposition run.
type TuckerResult = tucker.Result

// Tucker computes a Tucker decomposition by HOSVD + HOOI on the same
// no-reorder TTM substrate the MTTKRP kernels use.
func Tucker(x *Tensor, cfg TuckerConfig) (*TuckerResult, error) {
	return tucker.Decompose(x, cfg)
}
